// ResourceGovernor under the mutator pool: the tick must aggregate
// per-isolate counters bumped by *every* mutator thread, and the A7
// hung-callers scan must not mistake a pool worker for a hung foreign
// caller while it is blocked inside the very bundle it is scheduled for
// (pool workers are creator-attributed to Isolate0, so without the
// scheduled_isolate exemption every blocking bundle task would look like
// a foreign thread trapped in the bundle and strike toward a kill).
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "admin/governor.h"
#include "bytecode/builder.h"
#include "osgi/framework.h"
#include "runtime/mutator_pool.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

namespace ijvm {
namespace {

using namespace std::chrono;

bool waitUntil(i64 timeout_ms, const std::function<bool()>& cond) {
  auto deadline = steady_clock::now() + milliseconds(timeout_ms);
  while (steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return cond();
}

// A bundle whose nap(ms) parks the calling thread in Thread.sleep --
// blocked inside the bundle, frames on stack: exactly the A7 shape.
BundleDescriptor napBundle(const std::string& name, const std::string& pkg) {
  BundleDescriptor desc;
  desc.symbolic_name = name;
  ClassBuilder cb(pkg + "/Main");
  auto& m = cb.method("nap", "(I)I", ACC_PUBLIC | ACC_STATIC);
  m.iload(0).i2l().invokestatic("java/lang/Thread", "sleep", "(J)V");
  m.iconst(7).ireturn();
  desc.classes.push_back(cb.build());
  return desc;
}

TEST(GovernorMultiThread, PoolWorkerBlockedInScheduledBundleIsNotHung) {
  VmOptions opts = VmOptions::isolated();
  opts.mutator_threads = 2;
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);
  Bundle* b = fw.install(napBundle("napper", "np"));
  fw.start(b);

  // Hair-trigger A7: one blocked foreign caller, one strike, kill.
  GovernorPolicy policy;
  GovernorRule rule;
  rule.signal = Signal::HungCallers;
  rule.threshold = 0.5;
  rule.strikes_to_act = 1;
  rule.action = GovernorAction::Kill;
  rule.label = "hung";
  policy.rules.push_back(rule);
  policy.warmup_ticks = 0;
  policy.gc_if_allocated_bytes = 0;
  ResourceGovernor gov(fw, policy);

  // A pool worker sleeping inside the bundle it is *scheduled for* must
  // not strike: it is the bundle's own work, not a trapped caller.
  vm.mutatorPool().submit(
      [&vm, b](JThread* t) {
        vm.callStaticIn(t, b->loader(), "np/Main", "nap", "(I)I",
                        {Value::ofInt(500)});
        vm.clearPending(t);
      },
      b->isolate());
  ASSERT_TRUE(waitUntil(5000, [&] {
    return b->isolate()->stats.sleeping_threads.load() > 0;
  })) << "pool task never parked in the bundle";
  for (int i = 0; i < 3; ++i) {
    for (const GovernorEvent& ev : gov.tick()) {
      EXPECT_FALSE(ev.acted && ev.bundle_id == b->id())
          << "pool worker misread as a hung caller: " << ev.rule_label;
    }
  }
  EXPECT_TRUE(b->isolate()->isActive());
  vm.mutatorPool().drain();

  // Positive control -- the signal itself still works: a plain attached
  // thread (creator Isolate0, no scheduled_isolate marker) parked inside
  // the bundle IS a hung foreign caller, and one tick kills.
  std::thread foreign([&] {
    JThread* t = vm.attachThread("foreign", vm.isolateById(0));
    vm.callStaticIn(t, b->loader(), "np/Main", "nap", "(I)I",
                    {Value::ofInt(800)});
    vm.clearPending(t);
    vm.detachThread(t);
  });
  ASSERT_TRUE(waitUntil(5000, [&] {
    return b->isolate()->stats.sleeping_threads.load() > 0;
  })) << "foreign caller never parked in the bundle";
  bool killed = false;
  for (int i = 0; i < 3 && !killed; ++i) {
    for (const GovernorEvent& ev : gov.tick()) {
      killed |= ev.acted && ev.action == GovernorAction::Kill &&
                ev.bundle_id == b->id();
    }
  }
  EXPECT_TRUE(killed) << "a genuinely hung foreign caller must still strike";
  foreign.join();
  vm.shutdownAllThreads();
}

TEST(GovernorMultiThread, RateSignalsAggregateAcrossPoolWorkers) {
  VmOptions opts = VmOptions::isolated();
  opts.mutator_threads = 2;
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);
  Bundle* b = fw.install(makeMicroBundle("hotpair"));
  fw.start(b);

  // Each worker contributes ~5000 back-edges between ticks. The 7500
  // threshold sits above anything one worker produced and below the
  // two-worker sum: the rule can only trip if the tick aggregates the
  // per-isolate counter every mutator bumps.
  GovernorPolicy policy;
  GovernorRule rule;
  rule.signal = Signal::LoopBackEdgeRate;
  rule.threshold = 7500.0;
  rule.strikes_to_act = 1;
  rule.action = GovernorAction::Kill;
  rule.label = "hot-loop";
  policy.rules.push_back(rule);
  policy.warmup_ticks = 1;
  policy.gc_if_allocated_bytes = 0;
  ResourceGovernor gov(fw, policy);

  gov.tick();  // warmup: baselines the per-tick deltas

  MutatorPool& pool = vm.mutatorPool();
  for (int task = 0; task < 2; ++task) {
    pool.submit(
        [&vm, b](JThread* t) {
          for (int i = 0; i < 5; ++i) {
            vm.callStaticIn(t, b->loader(), "micro/Bench", "spinFor", "(I)I",
                            {Value::ofInt(1000)});
            EXPECT_EQ(t->pending_exception, nullptr);
          }
        },
        b->isolate());
  }
  pool.drain();

  bool tripped = false;
  double observed = 0.0;
  for (const GovernorEvent& ev : gov.tick()) {
    if (ev.bundle_id == b->id() && ev.signal == Signal::LoopBackEdgeRate) {
      tripped |= ev.acted;
      observed = ev.observed;
    }
  }
  EXPECT_TRUE(tripped)
      << "tick saw only " << observed
      << " back-edges: per-isolate rates are not aggregating across "
         "pool workers";
  EXPECT_GE(observed, 7500.0);
  vm.shutdownAllThreads();
}

}  // namespace
}  // namespace ijvm
