// The compiled-code lifecycle subsystem (docs/jit.md, "Code lifecycle"):
// the bounded code cache (exec/code_cache.h) and the background compile
// manager (exec/compile_manager.h). Covered here:
//   * budget-driven demotion evicts the coldest compiled method, not the
//     hot one that pushed the cache over budget;
//   * demote -> re-heat -> recompile round-trip through the
//     QCode::jit_hotness_floor gate, and reclamation of the retired code
//     by the GC's stop-the-world sweep;
//   * GovernorAction::DemoteJit (with a fire_below cool-down rule)
//     reclaims a cooled bundle's code and the raised floor keeps it from
//     bouncing straight back;
//   * demotion racing terminateIsolate poisoning, in both orders and
//     concurrently -- the spinning thread always dies, re-entry is always
//     refused, retired code is always reclaimed;
//   * a churny multi-bundle workload with a budget smaller than its
//     compiled working set keeps installed bytes bounded while results
//     stay exact;
//   * background compilation installs at a mutator drain point and the
//     post-deopt re-request counter surfaces in ResourceStats.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

#include "admin/governor.h"
#include "bytecode/builder.h"
#include "exec/code_cache.h"
#include "exec/compile_manager.h"
#include "exec/engine.h"
#include "exec/jit.h"
#include "exec/quickened.h"
#include "heap/object.h"
#include "osgi/framework.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

namespace ijvm {
namespace {

#ifdef IJVM_DISABLE_JIT
#define IJVM_REQUIRE_JIT() GTEST_SKIP() << "built with IJVM_DISABLE_JIT"
#else
#define IJVM_REQUIRE_JIT() (void)0
#endif

// Deterministic tiers: compile at the second entry, synchronously.
VmOptions cacheOptions(size_t budget) {
  VmOptions opts = VmOptions::isolated();
  opts.exec_engine = ExecEngine::Jit;
  opts.fusion_threshold = 0;
  opts.jit_threshold = 0;
  opts.background_compile = false;
  opts.code_cache_budget = budget;
  return opts;
}

struct CacheVm {
  explicit CacheVm(VmOptions opts) : vm(opts) {
    installSystemLibrary(vm);
    app = vm.registry().newLoader("app");
  }
  void boot() { vm.createIsolate(app, "app"); }

  JMethod* method(const std::string& cls, const std::string& name,
                  const std::string& desc) {
    JClass* c = vm.registry().resolve(app, cls);
    return c == nullptr ? nullptr : c->findMethod(name, desc);
  }

  i32 call(const std::string& cls, const std::string& name, i32 arg) {
    Value r = vm.callStaticIn(vm.mainThread(), app, cls, name, "(I)I",
                              {Value::ofInt(arg)});
    EXPECT_EQ(vm.mainThread()->pending_exception, nullptr)
        << vm.pendingMessage(vm.mainThread());
    return r.asInt();
  }

  VM vm;
  ClassLoader* app = nullptr;
};

// sum(0..n-1) via the canonical hot loop (same shape as test_jit).
void defineSumLoop(ClassBuilder& cb, const std::string& method_name) {
  auto& m = cb.method(method_name, "(I)I", ACC_PUBLIC | ACC_STATIC);
  Label head = m.newLabel(), done = m.newLabel();
  m.iconst(0).istore(1);
  m.iconst(0).istore(2);
  m.bind(head).iload(2).iload(0).ifIcmpGe(done);
  m.iload(1).iload(2).iadd().istore(1);
  m.iinc(2, 1).gotoLabel(head);
  m.bind(done).iload(1).ireturn();
}

i32 goldenSum(i32 n) {
  u32 sum = 0;
  for (u32 i = 0; i < static_cast<u32>(n); ++i) sum += i;
  return static_cast<i32>(sum);
}

bool waitUntil(i64 timeout_ms, const std::function<bool()>& cond) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

// The compiled footprint of one sum-loop method, measured on a throwaway
// VM (footprints are deterministic per build, so budget arithmetic in the
// tests below stays exact without hard-coding sizes).
size_t oneLoopFootprint() {
  CacheVm f(cacheOptions(/*budget=*/0));
  {
    ClassBuilder cb("app/One");
    defineSumLoop(cb, "f");
    f.app->define(cb.build());
  }
  f.boot();
  f.call("app/One", "f", 64);
  f.call("app/One", "f", 64);  // second entry compiles
  EXPECT_NE(exec::jitCodeOf(f.method("app/One", "f", "(I)I")), nullptr);
  return exec::codeCacheStats(f.vm).installed_bytes;
}

TEST(CodeCache, BudgetDemotesColdestMethod) {
  IJVM_REQUIRE_JIT();
  const size_t one = oneLoopFootprint();
  ASSERT_GT(one, 0u);
  // Room for two compiled methods, not three.
  CacheVm f(cacheOptions(2 * one + one / 2));
  {
    ClassBuilder cb("app/T");
    defineSumLoop(cb, "cold");
    defineSumLoop(cb, "hot");
    defineSumLoop(cb, "filler");
    f.app->define(cb.build());
  }
  f.boot();

  // cold compiles with a tiny usage score; hot earns a big one.
  for (int i = 0; i < 2; ++i) EXPECT_EQ(f.call("app/T", "cold", 8), 28);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(f.call("app/T", "hot", 512), goldenSum(512));
  }
  JMethod* cold = f.method("app/T", "cold", "(I)I");
  JMethod* hot = f.method("app/T", "hot", "(I)I");
  ASSERT_NE(exec::jitCodeOf(cold), nullptr);
  ASSERT_NE(exec::jitCodeOf(hot), nullptr);

  // The third install exceeds the budget: the coldest method is demoted.
  // filler arrives with visibly more heat (64-iteration loop) than the
  // long-idle cold method's leftover score.
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(f.call("app/T", "filler", 64), goldenSum(64));
  }
  EXPECT_EQ(exec::jitCodeOf(cold), nullptr) << "coldest method not demoted";
  EXPECT_NE(exec::jitCodeOf(hot), nullptr) << "hot method wrongly demoted";
  EXPECT_NE(exec::jitCodeOf(f.method("app/T", "filler", "(I)I")), nullptr);

  exec::CodeCacheStats stats = exec::codeCacheStats(f.vm);
  EXPECT_GE(stats.demotions, 1u);
  EXPECT_LE(stats.installed_bytes, 2 * one + one / 2);
  EXPECT_EQ(stats.installed_methods, 2u);

  Isolate* iso = f.vm.isolateById(0);
  ASSERT_NE(iso, nullptr);
  EXPECT_GE(iso->stats.jit_methods_demoted.load(), 1u);
  EXPECT_EQ(static_cast<u64>(iso->stats.jit_code_bytes.load()),
            stats.installed_bytes);
  // Demotion is poison-free: the demoted method still runs (interpreted).
  EXPECT_EQ(f.call("app/T", "cold", 8), 28);
}

TEST(CodeCache, DemoteReheatRecompileRoundTrip) {
  IJVM_REQUIRE_JIT();
  CacheVm f(cacheOptions(/*budget=*/0));
  {
    ClassBuilder cb("app/T");
    defineSumLoop(cb, "f");
    f.app->define(cb.build());
  }
  f.boot();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(f.call("app/T", "f", 100), 4950);
  JMethod* m = f.method("app/T", "f", "(I)I");
  ASSERT_NE(exec::jitCodeOf(m), nullptr);
  auto* qc = static_cast<exec::QCode*>(m->qcode.load());
  ASSERT_NE(qc, nullptr);
  EXPECT_EQ(qc->jit_hotness_floor.load(), 0u);

  // Demote: entry un-patched, floor raised to the method's current heat.
  ASSERT_TRUE(exec::demoteCompiled(f.vm, m));
  EXPECT_EQ(exec::jitCodeOf(m), nullptr);
  EXPECT_GT(qc->jit_hotness_floor.load(), 0u);
  EXPECT_FALSE(exec::demoteCompiled(f.vm, m)) << "double demote must no-op";
  exec::CodeCacheStats after = exec::codeCacheStats(f.vm);
  EXPECT_EQ(after.demotions, 1u);
  EXPECT_GT(after.retired_bytes, 0u);

  // The GC's stop-the-world sweep reclaims the retired code (no frame is
  // inside it: we are between guest calls).
  f.vm.collectGarbage(f.vm.mainThread(), nullptr);
  after = exec::codeCacheStats(f.vm);
  EXPECT_EQ(after.retired_bytes, 0u);
  EXPECT_EQ(after.reclaimed, 1u);

  // Re-heat: with jit_threshold 0 the very next invocation is fresh heat
  // above the floor, so the method recompiles -- the round-trip.
  EXPECT_EQ(f.call("app/T", "f", 100), 4950);
  EXPECT_NE(exec::jitCodeOf(m), nullptr);
  EXPECT_EQ(exec::codeCacheStats(f.vm).compiles, 2u);
  EXPECT_EQ(f.call("app/T", "f", 1000), goldenSum(1000));
}

TEST(CodeCache, ReheatFloorGatesRecompilation) {
  IJVM_REQUIRE_JIT();
  // Nonzero threshold: a demoted method must earn `jit_threshold` fresh
  // invocations/back-edges before recompiling.
  VmOptions opts = cacheOptions(/*budget=*/0);
  opts.jit_threshold = 500;
  CacheVm f(opts);
  {
    ClassBuilder cb("app/T");
    defineSumLoop(cb, "f");
    f.app->define(cb.build());
  }
  f.boot();
  // 100-iteration loop: ~101 hotness per call; hot after ~5 calls.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(f.call("app/T", "f", 100), 4950);
  JMethod* m = f.method("app/T", "f", "(I)I");
  ASSERT_NE(exec::jitCodeOf(m), nullptr);

  ASSERT_TRUE(exec::demoteCompiled(f.vm, m));
  // Two calls = ~200 fresh heat: below the threshold, stays demoted.
  EXPECT_EQ(f.call("app/T", "f", 100), 4950);
  EXPECT_EQ(f.call("app/T", "f", 100), 4950);
  EXPECT_EQ(exec::jitCodeOf(m), nullptr)
      << "recompiled before earning jit_threshold fresh heat";
  // Six more (~800 total): over the threshold, recompiles.
  for (int i = 0; i < 6; ++i) EXPECT_EQ(f.call("app/T", "f", 100), 4950);
  EXPECT_NE(exec::jitCodeOf(m), nullptr);
}

TEST(CodeCache, GovernorDemoteJitActionReclaimsCooledBundle) {
  IJVM_REQUIRE_JIT();
  VmOptions opts = cacheOptions(/*budget=*/0);
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);
  Bundle* micro = fw.install(makeMicroBundle("cooling"));
  fw.start(micro);

  // Cool-down policy: demote when the bundle's back-edge rate stays at or
  // below 1000 for two consecutive ticks (docs/governor.md, DemoteJit).
  GovernorPolicy policy;
  GovernorRule rule;
  rule.signal = Signal::LoopBackEdgeRate;
  rule.threshold = 1000.0;
  rule.strikes_to_act = 2;
  rule.action = GovernorAction::DemoteJit;
  rule.label = "cooled";
  rule.fire_below = true;
  policy.rules.push_back(rule);
  policy.gc_if_allocated_bytes = 0;
  ResourceGovernor gov(fw, policy);

  JThread* t = vm.mainThread();
  auto spin = [&](i32 n) {
    Value r = vm.callStaticIn(t, micro->loader(), "micro/Bench", "spinFor",
                              "(I)I", {Value::ofInt(n)});
    EXPECT_EQ(t->pending_exception, nullptr) << vm.pendingMessage(t);
    return r.asInt();
  };
  JMethod* m = vm.registry()
                   .resolve(micro->loader(), "micro/Bench")
                   ->findMethod("spinFor", "(I)I");
  ASSERT_NE(m, nullptr);
  spin(2000);
  spin(2000);  // second entry compiles (thresholds 0, synchronous)
  ASSERT_NE(exec::jitCodeOf(m), nullptr);

  // Tick 1 warms the track; the bundle then goes quiet, so ticks 2 and 3
  // observe a sub-threshold rate and the second strike demotes.
  gov.tick();
  gov.tick();
  std::vector<GovernorEvent> events = gov.tick();
  bool demoted_event = false;
  for (const GovernorEvent& ev : events) {
    demoted_event |= ev.action == GovernorAction::DemoteJit && ev.acted &&
                     ev.bundle_id == micro->id();
  }
  EXPECT_TRUE(demoted_event) << "cooled bundle never hit the DemoteJit rule";
  EXPECT_EQ(exec::jitCodeOf(m), nullptr) << "DemoteJit did not demote";
  EXPECT_GE(exec::codeCacheStats(vm).demotions, 1u);
  EXPECT_GE(micro->isolate()->stats.jit_methods_demoted.load(), 1u);

  // Poison-free: the bundle still runs, and once it re-heats past the
  // floor it recompiles (threshold 0: one invocation of fresh heat).
  EXPECT_EQ(spin(2000), spin(2000));
  EXPECT_NE(exec::jitCodeOf(m), nullptr);
  vm.shutdownAllThreads();
}

// A bundle whose activator spawns a thread spinning inside a compiled
// method forever (the test_jit termination shape).
BundleDescriptor spinnerBundle(const std::string& name,
                               const std::string& pkg) {
  BundleDescriptor desc;
  desc.symbolic_name = name;
  {
    ClassBuilder cb(pkg + "/Main");
    auto& m = cb.method("spin", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label head = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(1);
    m.iconst(0).istore(2);
    m.bind(head).iload(2).iload(0).ifIcmpGe(done);
    m.iload(1).iload(2).ixor().istore(1);
    m.iinc(2, 1).gotoLabel(head);
    m.bind(done).iload(1).ireturn();
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb(pkg + "/Spin");
    cb.addInterface("java/lang/Runnable");
    auto& run = cb.method("run", "()V");
    Label loop = run.newLabel();
    run.bind(loop);
    run.iconst(50000).invokestatic(pkg + "/Main", "spin", "(I)I").pop();
    run.gotoLabel(loop);
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb(pkg + "/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.newObject("java/lang/Thread").dup();
    start.newDefault(pkg + "/Spin");
    start.invokespecial("java/lang/Thread", "<init>",
                        "(Ljava/lang/Runnable;)V");
    start.invokevirtual("java/lang/Thread", "start", "()V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    desc.classes.push_back(cb.build());
  }
  desc.activator = pkg + "/Activator";
  return desc;
}

TEST(CodeCache, DemotionRacesTerminationPoisoning) {
  IJVM_REQUIRE_JIT();
  VmOptions opts = cacheOptions(/*budget=*/0);
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);

  auto expectDeadAndRefused = [&](Bundle* b, const std::string& pkg) {
    EXPECT_TRUE(waitUntil(5000, [&] {
      return b->isolate()->stats.live_threads.load() == 0;
    })) << "spinning thread survived termination (" << pkg << ")";
    JThread* t = vm.mainThread();
    vm.callStaticIn(t, b->loader(), pkg + "/Main", "spin", "(I)I",
                    {Value::ofInt(10)});
    ASSERT_NE(t->pending_exception, nullptr);
    EXPECT_NE(vm.pendingMessage(t).find("StoppedIsolate"), std::string::npos);
    vm.clearPending(t);
  };
  auto compiledSpin = [&](Bundle* b, const std::string& pkg) {
    JMethod* spin = vm.registry()
                        .resolve(b->loader(), pkg + "/Main")
                        ->findMethod("spin", "(I)I");
    EXPECT_TRUE(
        waitUntil(5000, [&] { return exec::jitCodeOf(spin) != nullptr; }))
        << pkg << "/Main.spin was never compiled";
    return spin;
  };

  // Order 1: demote first, then terminate. The method falls back to the
  // (poison-barred) interpreter; termination still kills the spinner.
  Bundle* a = fw.install(spinnerBundle("spin-a", "sa"));
  fw.start(a);
  JMethod* spin_a = compiledSpin(a, "sa");
  exec::demoteLoaderJit(vm, a->loader());
  EXPECT_EQ(exec::jitCodeOf(spin_a), nullptr);
  fw.killBundle(a);
  expectDeadAndRefused(a, "sa");

  // Order 2: terminate first (poisons the compiled entry), then demote.
  // Demotion un-patches a poisoned entry (unless the kill's own GC
  // already declared the isolate Dead and retired the code -- either way
  // it must end un-installed); the method-level poison barrier still
  // refuses re-entry.
  Bundle* b = fw.install(spinnerBundle("spin-b", "sb"));
  fw.start(b);
  JMethod* spin_b = compiledSpin(b, "sb");
  fw.killBundle(b);
  exec::demoteLoaderJit(vm, b->loader());
  EXPECT_EQ(exec::jitCodeOf(spin_b), nullptr);
  expectDeadAndRefused(b, "sb");

  // Concurrent: demotion hammering the loader while the kill's
  // stop-the-world poisoning pass runs.
  Bundle* c = fw.install(spinnerBundle("spin-c", "sc"));
  fw.start(c);
  compiledSpin(c, "sc");
  std::atomic<bool> stop{false};
  std::thread demoter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      exec::demoteLoaderJit(vm, c->loader());
    }
  });
  fw.killBundle(c);
  stop.store(true, std::memory_order_release);
  demoter.join();
  expectDeadAndRefused(c, "sc");

  // Everything those bundles compiled is now demoted or poisoned-dead;
  // once the spinners unwound and the GC declares the isolates Dead, the
  // sweep retires the poisoned code too and frees the lot -- dead
  // bundles must not hold code-cache budget (even an unlimited one)
  // forever. (System-library methods compiled under threshold 0 stay
  // installed, so the bound is per-bundle, via jit_code_bytes.)
  EXPECT_TRUE(waitUntil(5000, [&] {
    vm.collectGarbage(vm.mainThread(), nullptr);  // Dead-marking + sweep
    if (exec::codeCacheStats(vm).retired_bytes != 0) return false;
    for (Bundle* dead : {a, b, c}) {
      if (dead->isolate()->stats.jit_code_bytes.load() != 0) return false;
    }
    return true;
  })) << "dead bundles' compiled code never fully reclaimed";
  vm.shutdownAllThreads();
}

TEST(CodeCache, ChurnyMultiBundleWorkloadStaysBounded) {
  IJVM_REQUIRE_JIT();
  const size_t one = oneLoopFootprint();
  ASSERT_GT(one, 0u);
  // Budget smaller than the compiled working set: 6 hot bundles, room for
  // ~2 compiled methods.
  const size_t budget = 2 * one + one / 2;
  VmOptions opts = cacheOptions(budget);
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);
  std::vector<Bundle*> bundles;
  for (int k = 0; k < 6; ++k) {
    Bundle* b = fw.install(makeMicroBundle("churn" + std::to_string(k)));
    fw.start(b);
    bundles.push_back(b);
  }

  JThread* t = vm.mainThread();
  u64 max_installed = 0;
  for (int round = 0; round < 4; ++round) {
    for (Bundle* b : bundles) {
      for (int i = 0; i < 3; ++i) {
        Value r = vm.callStaticIn(t, b->loader(), "micro/Bench", "spinFor",
                                  "(I)I", {Value::ofInt(256)});
        ASSERT_EQ(t->pending_exception, nullptr) << vm.pendingMessage(t);
        // spinFor xors 0..n-1 into an accumulator; value must stay exact
        // across compile/demote churn.
        i32 expect = 0;
        for (i32 j = 0; j < 256; ++j) expect ^= j;
        EXPECT_EQ(r.asInt(), expect);
      }
      max_installed =
          std::max(max_installed, exec::codeCacheStats(vm).installed_bytes);
    }
    // Churny platforms reclaim through the GC's stop-the-world sweep.
    vm.collectGarbage(t, nullptr);
  }
  exec::CodeCacheStats stats = exec::codeCacheStats(vm);
  EXPECT_LE(max_installed, budget) << "installed bytes exceeded the budget";
  EXPECT_GE(stats.demotions, 4u) << "churn should keep demoting";
  EXPECT_LE(stats.retired_bytes, 6 * one)
      << "retired code not being reclaimed";
  // Per-isolate jit_code_bytes sums to the installed footprint.
  i64 per_iso = 0;
  for (Bundle* b : bundles) {
    per_iso += b->isolate()->stats.jit_code_bytes.load();
  }
  EXPECT_EQ(static_cast<u64>(per_iso), stats.installed_bytes);
  vm.shutdownAllThreads();
}

TEST(CodeCache, BackgroundCompileInstallsAtDrainPoint) {
  IJVM_REQUIRE_JIT();
#ifdef IJVM_DISABLE_BG_COMPILE
  GTEST_SKIP() << "built with IJVM_DISABLE_BG_COMPILE";
#else
  VmOptions opts = cacheOptions(/*budget=*/0);
  opts.background_compile = true;
  CacheVm f(opts);
  {
    ClassBuilder cb("app/T");
    defineSumLoop(cb, "f");
    f.app->define(cb.build());
  }
  f.boot();
  JMethod* m = f.method("app/T", "f", "(I)I");

  // The request is queued at the second entry; the mutator never blocks.
  EXPECT_EQ(f.call("app/T", "f", 100), 4950);
  EXPECT_EQ(f.call("app/T", "f", 100), 4950);
  // Wait for the worker to finish building (the waiter installs ready
  // code itself, which is exactly what a mutator drain point does).
  ASSERT_TRUE(exec::waitCompileIdle(f.vm, 10000));
  ASSERT_NE(exec::jitCodeOf(m), nullptr);
  exec::CodeCacheStats stats = exec::codeCacheStats(f.vm);
  EXPECT_GE(stats.background_compiles, 1u);
  // And the installed code actually runs.
  EXPECT_EQ(f.call("app/T", "f", 1000), goldenSum(1000));
#endif
}

TEST(CodeCache, PostDeoptRecompileRequestsSurfaceInResourceStats) {
  IJVM_REQUIRE_JIT();
  CacheVm f(cacheOptions(/*budget=*/0));
  {
    // The test_jit cold-arm shape: the getstatic arm never quickens while
    // the method compiles hot on the other arm, so taking it deopts and
    // the next entry re-requests compilation.
    ClassBuilder cb("app/T");
    cb.field("s", "I", ACC_PUBLIC | ACC_STATIC);
    auto& clinit = cb.method("<clinit>", "()V", ACC_STATIC);
    clinit.iconst(77).putstatic("app/T", "s", "I").ret();
    auto& m = cb.method("f", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label cold = m.newLabel();
    m.iload(0).ifne(cold);
    m.iconst(42).ireturn();
    m.bind(cold).getstatic("app/T", "s", "I").ireturn();
    f.app->define(cb.build());
  }
  f.boot();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(f.call("app/T", "f", 0), 42);
  JMethod* m = f.method("app/T", "f", "(I)I");
  ASSERT_NE(exec::jitCodeOf(m), nullptr);
  auto* qc = static_cast<exec::QCode*>(m->qcode.load());
  ASSERT_NE(qc, nullptr);
  EXPECT_EQ(qc->jit_recompile_requests.load(), 0u);

  EXPECT_EQ(f.call("app/T", "f", 1), 77);  // deopt
  EXPECT_EQ(exec::jitCodeOf(m), nullptr);
  EXPECT_EQ(f.call("app/T", "f", 1), 77);  // re-request + recompile
  ASSERT_NE(exec::jitCodeOf(m), nullptr);
  EXPECT_GE(qc->jit_recompile_requests.load(), 1u);

  Isolate* iso = f.vm.isolateById(0);
  ASSERT_NE(iso, nullptr);
  EXPECT_GE(iso->stats.jit_recompile_requests.load(), 1u);
  EXPECT_EQ(f.vm.reportFor(iso).jit_recompile_requests,
            iso->stats.jit_recompile_requests.load());
  // Deopt invalidation is retired-code too: the GC sweep reclaims it.
  f.vm.collectGarbage(f.vm.mainThread(), nullptr);
  exec::CodeCacheStats stats = exec::codeCacheStats(f.vm);
  EXPECT_GE(stats.deopt_invalidations, 1u);
  EXPECT_EQ(stats.retired_bytes, 0u);
}

}  // namespace
}  // namespace ijvm