// The tier-3 baseline JIT (src/exec/jit.cpp, contract in docs/jit.md):
// promotion of hot methods to call-threaded compiled code, the
// deopt-to-fused fallback for cold (unquickened) sites, the governor's
// promote-to-JIT queue, and termination of a bundle spinning inside
// compiled code (entry-point patching + in-flight polls).
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "admin/governor.h"
#include "bytecode/builder.h"
#include "exec/engine.h"
#include "exec/jit.h"
#include "exec/quickened.h"
#include "heap/object.h"
#include "osgi/framework.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

namespace ijvm {
namespace {

// The compilation-behavior tests assert that methods *do* compile, which
// the -DIJVM_DISABLE_JIT build compiles out by design.
#ifdef IJVM_DISABLE_JIT
#define IJVM_REQUIRE_JIT() GTEST_SKIP() << "built with IJVM_DISABLE_JIT"
#else
#define IJVM_REQUIRE_JIT() (void)0
#endif

VmOptions jitOptions() {
  VmOptions opts = VmOptions::isolated();
  opts.exec_engine = ExecEngine::Jit;
  opts.fusion_threshold = 0;
  opts.jit_threshold = 0;  // compile at the first warmed+fused entry
  // Synchronous compiles (docs/jit.md, "Code lifecycle"): these tests pin
  // *when* promotion takes effect, so the deterministic fallback is the
  // configuration under test. The background path has its own suite
  // (test_code_cache.cpp) and rides the randomized equivalence sweep.
  opts.background_compile = false;
  return opts;
}

struct JitVm {
  explicit JitVm(VmOptions opts = jitOptions()) : vm(opts) {
    installSystemLibrary(vm);
    app = vm.registry().newLoader("app");
  }
  void boot() { vm.createIsolate(app, "app"); }

  JMethod* method(const std::string& cls, const std::string& name,
                  const std::string& desc) {
    JClass* c = vm.registry().resolve(app, cls);
    return c == nullptr ? nullptr : c->findMethod(name, desc);
  }

  Value call(const std::string& cls, const std::string& name,
             const std::string& desc, std::vector<Value> args) {
    Value r = vm.callStaticIn(vm.mainThread(), app, cls, name, desc,
                              std::move(args));
    EXPECT_EQ(vm.mainThread()->pending_exception, nullptr)
        << vm.pendingMessage(vm.mainThread());
    return r;
  }

  VM vm;
  ClassLoader* app = nullptr;
};

// sum = 0; for (i = 0; i < n; i++) sum = sum + i; return sum
// Loop head, body triple + store, and latch -- all compile to single
// thunks (the body via the jit-only arith+store peephole).
void defineLoopClass(ClassBuilder& cb) {
  auto& m = cb.method("f", "(I)I", ACC_PUBLIC | ACC_STATIC);
  Label head = m.newLabel(), done = m.newLabel();
  m.iconst(0).istore(1);
  m.iconst(0).istore(2);
  m.bind(head).iload(2).iload(0).ifIcmpGe(done);
  m.iload(1).iload(2).iadd().istore(1);
  m.iinc(2, 1).gotoLabel(head);
  m.bind(done).iload(1).ireturn();
}

bool waitUntil(i64 timeout_ms, const std::function<bool()>& cond) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

TEST(Jit, HotLoopCompilesToCallThreadedCode) {
  IJVM_REQUIRE_JIT();
  JitVm f;
  {
    ClassBuilder cb("app/Loop");
    defineLoopClass(cb);
    f.app->define(cb.build());
  }
  f.boot();

  // Call 1 quickens + warms; call 2 fuses (complete pass) and compiles at
  // the same entry, then runs the compiled code.
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(100)}).asInt(), 4950);
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(100)}).asInt(), 4950);

  JMethod* m = f.method("app/Loop", "f", "(I)I");
  ASSERT_NE(m, nullptr);
  EXPECT_NE(exec::jitCodeOf(m), nullptr);

  std::string dis = exec::disasmJit(f.vm, m);
  EXPECT_NE(dis.find("compiled call-threaded"), std::string::npos) << dis;
  EXPECT_NE(dis.find("-> t"), std::string::npos) << dis;
#ifndef IJVM_DISABLE_FUSION
  // With the fusion tier available, fused groups compile to single
  // thunks and the arith+store peephole fires. (A -DIJVM_DISABLE_FUSION
  // build compiles the unfused stream -- still call-threaded, just one
  // thunk per instruction.)
  EXPECT_NE(dis.find("ILOAD_ILOAD_IF_ICMPGE_F"), std::string::npos) << dis;
  EXPECT_NE(dis.find("ILOAD_ILOAD_ARITH_ISTORE_J"), std::string::npos) << dis;
  EXPECT_NE(dis.find("IINC_GOTO_F"), std::string::npos) << dis;
#endif

  // Compiled semantics stay exact across sizes (including the 0-trip loop).
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(0)}).asInt(), 0);
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(1000)}).asInt(),
            499500);
}

TEST(Jit, DefaultThresholdLeavesColdMethodsUncompiled) {
  IJVM_REQUIRE_JIT();
  VmOptions opts = VmOptions::isolated();  // defaults: Jit, threshold 2048
  JitVm f(opts);
  {
    ClassBuilder cb("app/Loop");
    defineLoopClass(cb);
    f.app->define(cb.build());
  }
  f.boot();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(10)}).asInt(), 45);
  }
  JMethod* m = f.method("app/Loop", "f", "(I)I");
  EXPECT_EQ(exec::jitCodeOf(m), nullptr);
  EXPECT_EQ(exec::disasmJit(f.vm, m), "");
}

TEST(Jit, CompilesWithFusionDisabled) {
  IJVM_REQUIRE_JIT();
  // The runtime fusion off-switch must not disable tier 3: the compiler
  // then binds the plain quickened stream (one thunk per instruction).
  VmOptions opts = jitOptions();
  opts.fusion = false;
  JitVm f(opts);
  {
    ClassBuilder cb("app/Loop");
    defineLoopClass(cb);
    f.app->define(cb.build());
  }
  f.boot();
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(100)}).asInt(), 4950);
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(100)}).asInt(), 4950);
  JMethod* m = f.method("app/Loop", "f", "(I)I");
  ASSERT_NE(m, nullptr);
  EXPECT_NE(exec::jitCodeOf(m), nullptr);
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(1000)}).asInt(),
            499500);
}

TEST(Jit, QuickenedEngineNeverCompiles) {
  VmOptions opts = jitOptions();
  opts.exec_engine = ExecEngine::Quickened;  // tiers 0-2 only
  JitVm f(opts);
  {
    ClassBuilder cb("app/Loop");
    defineLoopClass(cb);
    f.app->define(cb.build());
  }
  f.boot();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(50)}).asInt(), 1225);
  }
  EXPECT_EQ(exec::jitCodeOf(f.method("app/Loop", "f", "(I)I")), nullptr);
}

TEST(Jit, ColdPathDeoptsThenRecompileCoversIt) {
  IJVM_REQUIRE_JIT();
  JitVm f;
  {
    // f(flag): flag != 0 ? T.s : 42 -- the getstatic arm stays cold (never
    // quickens) while the method gets hot on the other arm, so the first
    // compile plants a deopt thunk there.
    ClassBuilder cb("app/T");
    cb.field("s", "I", ACC_PUBLIC | ACC_STATIC);
    auto& clinit = cb.method("<clinit>", "()V", ACC_STATIC);
    clinit.iconst(77).putstatic("app/T", "s", "I").ret();
    auto& m = cb.method("f", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label cold = m.newLabel();
    m.iload(0).ifne(cold);
    m.iconst(42).ireturn();
    m.bind(cold).getstatic("app/T", "s", "I").ireturn();
    f.app->define(cb.build());
  }
  f.boot();

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(f.call("app/T", "f", "(I)I", {Value::ofInt(0)}).asInt(), 42);
  }
  JMethod* m = f.method("app/T", "f", "(I)I");
  ASSERT_NE(m, nullptr);
  ASSERT_NE(exec::jitCodeOf(m), nullptr);
  std::string dis = exec::disasmJit(f.vm, m);
  EXPECT_NE(dis.find("DEOPT"), std::string::npos)
      << "cold getstatic should compile as a deopt site:\n"
      << dis;

  // Taking the cold path deopts to the interpreter (which resolves the
  // static and returns the right value) and invalidates the compiled code.
  EXPECT_EQ(f.call("app/T", "f", "(I)I", {Value::ofInt(1)}).asInt(), 77);
  EXPECT_EQ(exec::jitCodeOf(m), nullptr);
  auto* qc = static_cast<exec::QCode*>(m->qcode.load());
  ASSERT_NE(qc, nullptr);
  EXPECT_GE(qc->jit_deopts.load(), 1u);

  // The method re-promotes at its next entry; the recompile binds the
  // now-quickened site directly -- no further deopts on either path.
  EXPECT_EQ(f.call("app/T", "f", "(I)I", {Value::ofInt(1)}).asInt(), 77);
  ASSERT_NE(exec::jitCodeOf(m), nullptr);
  dis = exec::disasmJit(f.vm, m);
  EXPECT_NE(dis.find("app/T.s"), std::string::npos) << dis;
  const u32 deopts_after_recompile = qc->jit_deopts.load();
  EXPECT_EQ(f.call("app/T", "f", "(I)I", {Value::ofInt(0)}).asInt(), 42);
  EXPECT_EQ(f.call("app/T", "f", "(I)I", {Value::ofInt(1)}).asInt(), 77);
  EXPECT_EQ(qc->jit_deopts.load(), deopts_after_recompile);
  EXPECT_NE(exec::jitCodeOf(m), nullptr);
}

TEST(Jit, ExceptionInCompiledCodeDispatchesToHandler) {
  IJVM_REQUIRE_JIT();
  JitVm f;
  {
    // Hot loop; on the last iteration divide by zero, caught locally.
    ClassBuilder cb("app/Exc");
    auto& m = cb.method("f", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    Label head = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(1);
    m.bind(head).iload(1).iload(0).ifIcmpGe(done);
    m.iinc(1, 1).gotoLabel(head);
    m.bind(done);
    m.bind(from).iload(1).iconst(0).idiv().ireturn();
    m.bind(to);
    m.bind(handler).pop().iload(1).ireturn();
    m.handler(from, to, handler, "java/lang/ArithmeticException");
    f.app->define(cb.build());
  }
  f.boot();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(f.call("app/Exc", "f", "(I)I", {Value::ofInt(500)}).asInt(), 500);
  }
  EXPECT_NE(exec::jitCodeOf(f.method("app/Exc", "f", "(I)I")), nullptr);
}

TEST(Jit, GovernorPromoteJitQueueCompilesHotBundle) {
  IJVM_REQUIRE_JIT();
  VmOptions opts = VmOptions::isolated();
  opts.exec_engine = ExecEngine::Jit;
  opts.background_compile = false;  // pin *when* the queue compiles
  // Engine's own hotness promotion effectively off: only the governor's
  // queue can get this method compiled.
  opts.jit_threshold = ~0ull;
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);
  Bundle* micro = fw.install(makeMicroBundle("hot"));
  fw.start(micro);

  GovernorPolicy policy;
  policy.rules.push_back({Signal::LoopBackEdgeRate, 1000.0, 1,
                          GovernorAction::PromoteJit, "hot-loop"});
  policy.gc_if_allocated_bytes = 0;
  policy.jit_promote_min_hotness = 100;
  ResourceGovernor gov(fw, policy);

  JThread* t = vm.mainThread();
  auto burn = [&] {
    for (int i = 0; i < 50; ++i) {
      vm.callStaticIn(t, micro->loader(), "micro/Bench", "spinFor", "(I)I",
                      {Value::ofInt(500)});
      ASSERT_EQ(t->pending_exception, nullptr) << vm.pendingMessage(t);
    }
  };
  JMethod* spin = vm.registry()
                      .resolve(micro->loader(), "micro/Bench")
                      ->findMethod("spinFor", "(I)I");
  ASSERT_NE(spin, nullptr);

  bool promoted = false;
  for (int round = 0; round < 4 && !promoted; ++round) {
    burn();
    for (const GovernorEvent& ev : gov.tick()) {
      promoted |= ev.action == GovernorAction::PromoteJit && ev.acted &&
                  ev.bundle_id == micro->id();
    }
  }
  ASSERT_TRUE(promoted) << "hot bundle not promoted by the governor";
  EXPECT_EQ(exec::jitCodeOf(spin), nullptr) << "compilation happens at entry";

  // The next entry drains the promote-to-JIT queue and compiles.
  vm.callStaticIn(t, micro->loader(), "micro/Bench", "spinFor", "(I)I",
                  {Value::ofInt(500)});
  ASSERT_EQ(t->pending_exception, nullptr);
  EXPECT_NE(exec::jitCodeOf(spin), nullptr);
  // And the freshly compiled code actually runs (and agrees).
  Value r = vm.callStaticIn(t, micro->loader(), "micro/Bench", "spinFor",
                            "(I)I", {Value::ofInt(500)});
  ASSERT_EQ(t->pending_exception, nullptr);
  (void)r;
  vm.shutdownAllThreads();
}

TEST(Jit, TerminationStopsBundleSpinningInCompiledCode) {
  IJVM_REQUIRE_JIT();
  VmOptions opts = jitOptions();
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);

  // Bundle: spin(n) is a bounded loop; the activator spawns a thread
  // calling spin(50000) forever, so after the first call the thread
  // executes almost entirely inside tier-3 compiled code.
  BundleDescriptor desc;
  desc.symbolic_name = "spinner";
  {
    ClassBuilder cb("sp/Main");
    auto& m = cb.method("spin", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label head = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(1);
    m.iconst(0).istore(2);
    m.bind(head).iload(2).iload(0).ifIcmpGe(done);
    m.iload(1).iload(2).ixor().istore(1);
    m.iinc(2, 1).gotoLabel(head);
    m.bind(done).iload(1).ireturn();
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("sp/Spin");
    cb.addInterface("java/lang/Runnable");
    auto& run = cb.method("run", "()V");
    Label loop = run.newLabel();
    run.bind(loop);
    run.iconst(50000).invokestatic("sp/Main", "spin", "(I)I").pop();
    run.gotoLabel(loop);
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("sp/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.newObject("java/lang/Thread").dup();
    start.newDefault("sp/Spin");
    start.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
    start.invokevirtual("java/lang/Thread", "start", "()V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    desc.classes.push_back(cb.build());
  }
  desc.activator = "sp/Activator";

  Bundle* b = fw.install(std::move(desc));
  fw.start(b);

  JMethod* spin = vm.registry()
                      .resolve(b->loader(), "sp/Main")
                      ->findMethod("spin", "(I)I");
  ASSERT_NE(spin, nullptr);
  // The spinning thread itself promotes and compiles spin() at its second
  // entry.
  ASSERT_TRUE(waitUntil(5000, [&] { return exec::jitCodeOf(spin) != nullptr; }))
      << "spin() was never compiled";

  // Kill the bundle: the compiled entry point is patched (paper: patching
  // compiled-method entry points) and the thread inside compiled code is
  // interrupted at its next back-edge poll.
  fw.killBundle(b);
  EXPECT_TRUE(waitUntil(5000, [&] {
    return b->isolate()->stats.live_threads.load() == 0;
  })) << "spinning thread survived termination";

  std::string dis = exec::disasmJit(vm, spin);
  EXPECT_NE(dis.find("entry POISONED"), std::string::npos) << dis;

  // Re-entry is refused: both the poisoned-method barrier and the patched
  // compiled entry raise StoppedIsolateException.
  JThread* t = vm.mainThread();
  vm.callStaticIn(t, b->loader(), "sp/Main", "spin", "(I)I",
                  {Value::ofInt(10)});
  ASSERT_NE(t->pending_exception, nullptr);
  EXPECT_NE(vm.pendingMessage(t).find("StoppedIsolate"), std::string::npos);
  vm.clearPending(t);
  vm.shutdownAllThreads();
}

TEST(Jit, SharedVCallICAcrossTiers) {
  IJVM_REQUIRE_JIT();
  // A compiled caller must drive the *same* inline cache the interpreter
  // installed: after compilation, alternating two receivers keeps hitting
  // the 2-entry polymorphic cache without allocating new entries.
  JitVm f;
  {
    ClassBuilder base("app/Base");
    auto& m = base.method("tag", "()I", ACC_PUBLIC);
    m.iconst(0).ireturn();
    f.app->define(base.build());
  }
  for (int k = 1; k <= 2; ++k) {
    ClassBuilder sub("app/Sub" + std::to_string(k), "app/Base");
    auto& m = sub.method("tag", "()I", ACC_PUBLIC);
    m.iconst(k).ireturn();
    f.app->define(sub.build());
  }
  {
    ClassBuilder cb("app/Drive");
    auto& m = cb.method("call", "(Lapp/Base;)I", ACC_PUBLIC | ACC_STATIC);
    m.aload(0).invokevirtual("app/Base", "tag", "()I").ireturn();
    f.app->define(cb.build());
  }
  f.boot();

  JThread* t = f.vm.mainThread();
  auto callWith = [&](int k) {
    JClass* cls = f.vm.registry().resolve(f.app, "app/Sub" + std::to_string(k));
    Object* obj = f.vm.allocObject(t, cls);
    Value r = f.vm.callStaticIn(t, f.app, "app/Drive", "call", "(Lapp/Base;)I",
                                {Value::ofRef(obj)});
    EXPECT_EQ(t->pending_exception, nullptr) << f.vm.pendingMessage(t);
    return r.asInt();
  };

  // Warm + compile with both receivers in the cache.
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(callWith(1), 1);
    EXPECT_EQ(callWith(2), 2);
  }
  JMethod* drive = f.method("app/Drive", "call", "(Lapp/Base;)I");
  ASSERT_NE(exec::jitCodeOf(drive), nullptr);

  auto st = std::static_pointer_cast<exec::ExecState>(
      f.vm.getExtension(exec::kStateKey));
  ASSERT_NE(st, nullptr);
  const size_t entries_before = st->vcall_ics.size();
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(callWith(1), 1);
    EXPECT_EQ(callWith(2), 2);
  }
  EXPECT_EQ(st->vcall_ics.size(), entries_before)
      << "compiled dispatch must hit the shared 2-entry polymorphic IC";
}

}  // namespace
}  // namespace ijvm
