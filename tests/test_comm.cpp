// Communication models (Table 1 substrate): serializer round-trips, deep
// copy isolation, and the cost ordering local <= ijvm << incommunicado << rmi.
#include <gtest/gtest.h>

#include "bytecode/builder.h"
#include "comm/comm.h"
#include "comm/serializer.h"
#include "heap/object.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

namespace ijvm {
namespace {

struct CommFixture : ::testing::Test {
  void boot() {
    vm = std::make_unique<VM>();
    installSystemLibrary(*vm);
    fw = std::make_unique<Framework>(*vm);
  }
  void TearDown() override {
    fw.reset();
    vm.reset();
  }
  std::unique_ptr<VM> vm;
  std::unique_ptr<Framework> fw;
};

TEST_F(CommFixture, SerializerRoundTripsObjectGraph) {
  boot();
  ClassLoader* shared = fw->frameworkIsolate()->loader;
  {
    ClassBuilder cb("t/Node");
    cb.field("value", "I");
    cb.field("weight", "D");
    cb.field("label", "Ljava/lang/String;");
    cb.field("next", "Lt/Node;");
    shared->define(cb.build());
  }
  JThread* t = vm->mainThread();
  JClass* node_cls = shared->find("t/Node");

  LocalRootScope roots(t);
  Object* a = roots.add(vm->allocObject(t, node_cls));
  Object* b = roots.add(vm->allocObject(t, node_cls));
  Object* label = roots.add(vm->newStringObject(t, "hello graph"));
  JField* value_f = node_cls->findField("value");
  JField* weight_f = node_cls->findField("weight");
  JField* label_f = node_cls->findField("label");
  JField* next_f = node_cls->findField("next");
  a->fields()[value_f->slot] = Value::ofInt(7);
  a->fields()[weight_f->slot] = Value::ofDouble(2.5);
  a->fields()[label_f->slot] = Value::ofRef(label);
  a->fields()[next_f->slot] = Value::ofRef(b);
  b->fields()[value_f->slot] = Value::ofInt(9);
  b->fields()[next_f->slot] = Value::ofRef(a);  // cycle

  std::string bytes = serializeGraph(*vm, a);
  Object* copy = deserializeGraph(*vm, t, bytes);
  ASSERT_EQ(t->pending_exception, nullptr) << vm->pendingMessage(t);
  ASSERT_NE(copy, nullptr);
  EXPECT_NE(copy, a);
  EXPECT_EQ(copy->fields()[value_f->slot].asInt(), 7);
  EXPECT_DOUBLE_EQ(copy->fields()[weight_f->slot].asDouble(), 2.5);
  Object* copy_label = copy->fields()[label_f->slot].asRef();
  ASSERT_NE(copy_label, nullptr);
  EXPECT_EQ(VM::stringValue(copy_label), "hello graph");
  Object* copy_b = copy->fields()[next_f->slot].asRef();
  ASSERT_NE(copy_b, nullptr);
  EXPECT_EQ(copy_b->fields()[value_f->slot].asInt(), 9);
  // Cycle preserved through back-references.
  EXPECT_EQ(copy_b->fields()[next_f->slot].asRef(), copy);
}

TEST_F(CommFixture, SerializerRejectsCorruptStream) {
  boot();
  JThread* t = vm->mainThread();
  std::string bytes = serializeGraph(*vm, nullptr);
  // Flip a payload byte: checksum must catch it.
  ASSERT_FALSE(bytes.empty());
  std::string corrupt = bytes;
  corrupt[corrupt.size() - 1] ^= 1;
  Object* r = deserializeGraph(*vm, t, corrupt);
  EXPECT_EQ(r, nullptr);
  ASSERT_NE(t->pending_exception, nullptr);
  vm->clearPending(t);
}

TEST_F(CommFixture, DeepCopyCreatesDistinctObjectsChargedToReceiver) {
  boot();
  ClassLoader* shared = fw->frameworkIsolate()->loader;
  {
    ClassBuilder cb("t/Pair");
    cb.field("x", "I");
    cb.field("y", "I");
    shared->define(cb.build());
  }
  JThread* t = vm->mainThread();
  JClass* pair_cls = shared->find("t/Pair");
  LocalRootScope roots(t);
  Object* src = roots.add(vm->allocObject(t, pair_cls));
  src->fields()[pair_cls->findField("x")->slot] = Value::ofInt(11);

  Object* dup = deepCopy(*vm, t, src);
  ASSERT_NE(dup, nullptr);
  EXPECT_NE(dup, src);
  EXPECT_EQ(dup->fields()[pair_cls->findField("x")->slot].asInt(), 11);
  // Mutating the copy does not affect the source (isolation of message
  // passing -- exactly what direct sharing in I-JVM does NOT do).
  dup->fields()[pair_cls->findField("x")->slot] = Value::ofInt(99);
  EXPECT_EQ(src->fields()[pair_cls->findField("x")->slot].asInt(), 11);
}

TEST_F(CommFixture, NativeBackedObjectsReportOwnerAndFieldPath) {
  // A graph that reaches a native-backed object cannot cross an isolate
  // boundary; the error must name the object's class, the isolate that
  // owns it, and the field path from the message root -- otherwise a
  // bundle author staring at a failed send has nothing to go on.
  boot();
  ClassLoader* shared = fw->frameworkIsolate()->loader;
  {
    ClassBuilder cb("t/Box");
    cb.field("left", "Ljava/lang/Object;");
    cb.field("right", "Ljava/lang/Object;");
    shared->define(cb.build());
    ClassBuilder nb("t/NativeThing");
    shared->define(nb.build());
  }
  JThread* t = vm->mainThread();
  JClass* box_cls = shared->find("t/Box");
  JClass* native_cls = shared->find("t/NativeThing");
  LocalRootScope roots(t);
  Object* box = roots.add(vm->allocObject(t, box_cls));
  Object* nat = roots.add(vm->allocNativeObject(
      t, native_cls, std::make_unique<NativePayload>()));
  ASSERT_NE(nat, nullptr);
  box->fields()[box_cls->findField("left")->slot] = Value::ofRef(nat);

  Object* dup = deepCopy(*vm, t, box);
  EXPECT_EQ(dup, nullptr);
  ASSERT_NE(t->pending_exception, nullptr);
  const std::string msg = vm->pendingMessage(t);
  EXPECT_NE(msg.find("t/NativeThing"), std::string::npos) << msg;
  const std::string owner =
      t->current_isolate.load(std::memory_order_relaxed)->name;
  EXPECT_NE(msg.find("owned by isolate '" + owner + "'"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("at <root>.left"), std::string::npos) << msg;
  vm->clearPending(t);
}

TEST_F(CommFixture, AllFourModelsComputeTheSameResultAndOrderAsExpected) {
  boot();
  CommHarness harness(*fw);
  const i32 n = 200;  // the paper's 200 inter-bundle calls

  i64 t_local = harness.runLocal(n);
  EXPECT_EQ(harness.lastCounterValue(), n);  // local counter: n calls
  i64 t_ijvm = harness.runIJvm(n);
  EXPECT_EQ(harness.lastCounterValue(), n);  // remote counter: n calls
  i64 t_inc = harness.runIncommunicado(n);
  EXPECT_EQ(harness.lastCounterValue(), 2 * n);
  i64 t_rmi = harness.runRmi(n);
  EXPECT_EQ(harness.lastCounterValue(), 3 * n);

  // Shape of Table 1: direct calls are far cheaper than message passing.
  EXPECT_LT(t_ijvm, t_inc);
  EXPECT_LT(t_inc, t_rmi * 10);  // rmi >= inc within noise; assert not wildly off
  EXPECT_LT(t_local, t_inc);
  ::testing::Test::RecordProperty("local_ns", std::to_string(t_local));
  ::testing::Test::RecordProperty("ijvm_ns", std::to_string(t_ijvm));
  ::testing::Test::RecordProperty("incommunicado_ns", std::to_string(t_inc));
  ::testing::Test::RecordProperty("rmi_ns", std::to_string(t_rmi));
}

}  // namespace
}  // namespace ijvm
