// Safepoint protocol under concurrent stop-the-world pressure.
//
// Regression suite for a real deadlock: a guest thread requesting a
// stop-the-world (e.g. an allocation-triggered GC) while another stopper
// holds the operation lock used to block on that lock while still counted
// as Running, so the current stopper waited for it forever. The fix parks
// guest requesters before they contend for the lock
// (SafepointController::stopTheWorld). These tests drive many concurrent
// stoppers of both kinds (guest allocation GCs, admin GCs, terminations)
// and must simply complete.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "bytecode/builder.h"
#include "obs/trace.h"
#include "runtime/mutator_pool.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"
#include "support/strf.h"

namespace ijvm {
namespace {

using namespace std::chrono;

// Guest class whose churn(n) allocates n arrays without retaining them --
// with a tiny gc_threshold every call storms the GC from guest context.
void defineChurn(ClassLoader* loader) {
  ClassBuilder cb("sp/Churn");
  auto& m = cb.method("churn", "(I)I", ACC_PUBLIC | ACC_STATIC);
  Label loop = m.newLabel(), done = m.newLabel();
  m.iconst(0).istore(1);
  m.bind(loop).iload(1).iload(0).ifIcmpGe(done);
  m.iconst(256).newarray(Kind::Int).pop();
  m.iinc(1, 1).gotoLabel(loop);
  m.bind(done).iload(1).ireturn();
  loader->define(cb.build());
}

TEST(SafepointStressTest, ConcurrentGuestGcRequestersDoNotDeadlock) {
  VmOptions opts;
  opts.gc_threshold = 64u << 10;  // force frequent guest-triggered GCs
  opts.heap_limit = 64u << 20;
  VM vm(opts);
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");
  Isolate* iso = vm.createIsolate(app, "app");
  defineChurn(app);

  // Several guest threads storming the allocator: each one periodically
  // becomes a stop-the-world *requester* from guest context while the
  // others are Running.
  constexpr int kThreads = 6;
  std::atomic<int> finished{0};
  std::vector<std::thread> workers;
  for (int k = 0; k < kThreads; ++k) {
    JThread* t = vm.attachThread(strf("w%d", k), iso);
    workers.emplace_back([&vm, &finished, t, app] {
      for (int round = 0; round < 20; ++round) {
        vm.callStaticIn(t, app, "sp/Churn", "churn", "(I)I",
                        {Value::ofInt(400)});
      }
      finished.fetch_add(1, std::memory_order_release);
      vm.detachThread(t);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(finished.load(), kThreads);
  EXPECT_GT(vm.gcCount(), 5u);  // the storm really did trigger collections
}

TEST(SafepointStressTest, GuestGcRacesAdminGcAndTermination) {
  VmOptions opts;
  opts.gc_threshold = 64u << 10;
  opts.heap_limit = 64u << 20;
  VM vm(opts);
  installSystemLibrary(vm);
  ClassLoader* l0 = vm.registry().newLoader("main");
  vm.createIsolate(l0, "main");

  // Guest churners in short-lived victim isolates; an admin thread GCs and
  // terminates concurrently -- non-guest stop-the-worlds racing guest ones.
  std::atomic<bool> stop{false};
  std::thread admin([&] {
    while (!stop.load(std::memory_order_acquire)) {
      vm.collectGarbage(nullptr, nullptr);
      std::this_thread::sleep_for(milliseconds(1));
    }
  });

  for (int round = 0; round < 6; ++round) {
    ClassLoader* lv = vm.registry().newLoader(strf("v%d", round));
    Isolate* victim = vm.createIsolate(lv, strf("v%d", round));
    defineChurn(lv);

    std::atomic<bool> done{false};
    JThread* t = vm.attachThread("victim-worker", victim);
    std::thread worker([&vm, &done, t, lv] {
      // Big churn: will usually be cut short by the termination below.
      vm.callStaticIn(t, lv, "sp/Churn", "churn", "(I)I",
                      {Value::ofInt(2000000)});
      vm.clearPending(t);
      done.store(true, std::memory_order_release);
      vm.detachThread(t);
    });
    std::this_thread::sleep_for(milliseconds(10));
    ASSERT_TRUE(vm.terminateIsolate(vm.mainThread(), victim));
    auto deadline = steady_clock::now() + seconds(10);
    while (!done.load(std::memory_order_acquire) &&
           steady_clock::now() < deadline) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    EXPECT_TRUE(done.load()) << "victim worker stuck after termination";
    worker.join();
  }
  stop.store(true, std::memory_order_release);
  admin.join();
}

// ---- the mutator pool must not stretch stop-the-world entry ----
//
// Allocation churn submitted to the pool makes every worker a periodic
// stop-the-world requester while the others are Running; the time-to-stop
// histogram (stop request -> every mutator parked) must stay within an
// absolute ceiling at every worker count. The ceiling is deliberately
// loose (scheduler noise on loaded CI), but it is flat: a protocol whose
// stop time grew with the thread count -- or a reclamation pass that
// still parked the world -- would blow through it at 4 workers.
TEST(SafepointStressTest, TimeToStopStaysBoundedAsMutatorPoolScales) {
  constexpr u64 kP99CeilingNs = 250ull * 1000 * 1000;  // 250 ms
  obs::setTraceEnabled(true);
  for (u32 workers : {1u, 2u, 4u}) {
    SCOPED_TRACE(strf("workers=%u", workers));
    obs::resetTrace();  // per-scale histograms
    VmOptions opts;
    opts.gc_threshold = 64u << 10;  // force frequent guest-triggered GCs
    opts.heap_limit = 64u << 20;
    opts.mutator_threads = workers;
    VM vm(opts);
    installSystemLibrary(vm);
    ClassLoader* app = vm.registry().newLoader("app");
    Isolate* iso = vm.createIsolate(app, "app");
    defineChurn(app);

    MutatorPool& pool = vm.mutatorPool();
    for (u32 k = 0; k < workers * 4; ++k) {
      pool.submit(
          [&vm, app](JThread* t) {
            for (int round = 0; round < 6; ++round) {
              vm.callStaticIn(t, app, "sp/Churn", "churn", "(I)I",
                              {Value::ofInt(300)});
              EXPECT_EQ(t->pending_exception, nullptr);
            }
          },
          iso);
    }
    pool.drain();
    EXPECT_GT(vm.gcCount(), 0u) << "churn never stormed the GC";

    obs::HistSnapshot s = obs::latencySnapshot(obs::Lat::SafepointTimeToStop);
    ASSERT_GT(s.count, 0u) << "no stop-the-world was ever timed";
    EXPECT_LE(s.p99_ns, kP99CeilingNs)
        << "time-to-stop p99 " << s.p99_ns << " ns at " << workers
        << " pool workers (max " << s.max_ns << " ns over " << s.count
        << " stops)";
  }
  obs::setTraceEnabled(false);
}

TEST(SafepointStressTest, BlockedScopeRestoresRunningState) {
  VM vm;
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");
  Isolate* iso = vm.createIsolate(app, "app");

  // A guest method that sleeps: while parked the thread must read Blocked
  // (the CPU sampler skips it, paper 3.2), and it must be Running again
  // right after.
  ClassBuilder cb("sp/Sleeper");
  auto& m = cb.method("nap", "()V", ACC_PUBLIC | ACC_STATIC);
  m.lconst(150).invokestatic("java/lang/Thread", "sleep", "(J)V");
  m.ret();
  app->define(cb.build());

  JThread* t = vm.attachThread("sleeper", iso);
  std::atomic<bool> done{false};
  std::thread worker([&] {
    vm.callStaticIn(t, app, "sp/Sleeper", "nap", "()V", {});
    done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_EQ(t->state.load(), ThreadState::Blocked)
      << "sleeping guest thread still counted Running (CPU sampler would "
         "bill it)";
  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  worker.join();
  vm.detachThread(t);
}

// ---- pool wakeup and shutdown contracts ----
//
// Regression for a lost-wakeup race: a worker whose take() came up empty
// parked on the idle CV without rechecking the deques under the lock, so a
// submit() landing in that window could notify nobody and strand its task
// -- every later drain() then hung. Tiny tasks drained in small batches
// maximize park/unpark churn; with the unfixed code this hangs within a
// few hundred rounds.
TEST(SafepointStressTest, SubmitNeverStrandsTaskAcrossIdleParking) {
  VmOptions opts;
  opts.mutator_threads = 2;
  VM vm(opts);
  installSystemLibrary(vm);
  vm.createIsolate(vm.registry().newLoader("app"), "app");
  MutatorPool& pool = vm.mutatorPool();
  std::atomic<u64> ran{0};
  u64 expected = 0;
  for (int round = 0; round < 2000; ++round) {
    const int batch = 1 + (round % 3);
    for (int k = 0; k < batch; ++k) {
      pool.submit(
          [&ran](JThread*) { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    expected += batch;
    pool.drain();  // hangs forever if any task was stranded
    ASSERT_EQ(ran.load(std::memory_order_relaxed), expected);
  }
  EXPECT_EQ(pool.tasksCompleted(), expected);
}

// shutdown() promises that already-queued tasks still run: workers may
// only exit once the deques are verifiably empty, even when stop_ was set
// while they were between a failed take() and the idle wait.
TEST(SafepointStressTest, ShutdownRunsAlreadyQueuedTasks) {
  VmOptions opts;
  opts.mutator_threads = 4;
  VM vm(opts);
  installSystemLibrary(vm);
  vm.createIsolate(vm.registry().newLoader("app"), "app");
  MutatorPool& pool = vm.mutatorPool();
  std::atomic<u64> ran{0};
  constexpr u64 kTasks = 512;
  for (u64 k = 0; k < kTasks; ++k) {
    pool.submit(
        [&ran](JThread*) { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.shutdown();  // joins workers; every queued task must have run
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(pool.tasksCompleted(), kTasks);
}

// submit() after shutdown() is dropped: nothing could ever run it, and
// counting it as submitted would hang the next drain().
TEST(SafepointStressTest, SubmitAfterShutdownIsDroppedAndDrainReturns) {
  VmOptions opts;
  opts.mutator_threads = 2;
  VM vm(opts);
  installSystemLibrary(vm);
  vm.createIsolate(vm.registry().newLoader("app"), "app");
  MutatorPool& pool = vm.mutatorPool();
  std::atomic<u64> ran{0};
  pool.submit(
      [&ran](JThread*) { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.shutdown();
  EXPECT_EQ(ran.load(), 1u);
  pool.submit([](JThread*) { ADD_FAILURE() << "task ran after shutdown"; });
  pool.drain();  // must return immediately: the late submit was dropped
  EXPECT_EQ(pool.tasksCompleted(), 1u);
}

}  // namespace
}  // namespace ijvm
