// Resource accounting (paper section 3.2): who gets charged for what.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "bytecode/builder.h"
#include "heap/object.h"
#include "osgi/framework.h"
#include "osgi/profiles.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

namespace ijvm {
namespace {

struct AcctFixture : ::testing::Test {
  void SetUp() override {
    vm = std::make_unique<VM>();
    installSystemLibrary(*vm);
    fw = std::make_unique<Framework>(*vm);
    defineCounterApi(*fw);
  }
  void TearDown() override {
    fw.reset();
    vm.reset();
  }
  std::unique_ptr<VM> vm;
  std::unique_ptr<Framework> fw;
};

TEST_F(AcctFixture, AllocationChargedToTheAllocatingIsolate) {
  BundleDescriptor desc;
  desc.symbolic_name = "allocator";
  {
    ClassBuilder cb("ac/Main");
    cb.field("kept", "[I", ACC_PUBLIC | ACC_STATIC);
    auto& m = cb.method("grab", "()V", ACC_PUBLIC | ACC_STATIC);
    m.iconst(50000).newarray(Kind::Int).putstatic("ac/Main", "kept", "[I");
    m.ret();
    desc.classes.push_back(cb.build());
  }
  Bundle* b = fw->install(std::move(desc));
  fw->start(b);

  JThread* t = vm->mainThread();
  vm->callStaticIn(t, b->loader(), "ac/Main", "grab", "()V", {});
  ASSERT_EQ(t->pending_exception, nullptr) << vm->pendingMessage(t);

  // Allocation-side counters update immediately...
  EXPECT_GE(b->isolate()->stats.bytes_allocated.load(), 200000u);
  // ...and the GC pass confirms the reachability-based charge.
  vm->collectGarbage(t, nullptr);
  EXPECT_GE(b->isolate()->stats.bytes_charged.load(), 200000u);
  EXPECT_LT(fw->frameworkIsolate()->stats.bytes_charged.load(), 200000u);
}

TEST_F(AcctFixture, LibraryWorkChargedToTheCallingBundle) {
  // A bundle doing I/O through the system library: the bytes land on the
  // bundle's account, not on a "library" account (library code runs in the
  // caller's isolate -- paper section 3.1/3.2).
  BundleDescriptor desc;
  desc.symbolic_name = "iouser";
  {
    ClassBuilder cb("io/Main");
    auto& m = cb.method("doIo", "()V", ACC_PUBLIC | ACC_STATIC);
    m.ldcStr("x").invokestatic("java/io/Connection", "open",
                               "(Ljava/lang/String;)Ljava/io/Connection;");
    m.astore(0);
    m.aload(0).ldcStr("0123456789abcdef");
    m.invokevirtual("java/io/Connection", "writeString", "(Ljava/lang/String;)V");
    m.aload(0).iconst(16);
    m.invokevirtual("java/io/Connection", "readString", "(I)Ljava/lang/String;");
    m.pop().ret();
    desc.classes.push_back(cb.build());
  }
  Bundle* b = fw->install(std::move(desc));
  fw->start(b);
  JThread* t = vm->mainThread();
  vm->callStaticIn(t, b->loader(), "io/Main", "doIo", "()V", {});
  ASSERT_EQ(t->pending_exception, nullptr) << vm->pendingMessage(t);

  EXPECT_EQ(b->isolate()->stats.io_bytes_written.load(), 16u);
  EXPECT_EQ(b->isolate()->stats.io_bytes_read.load(), 16u);
  EXPECT_EQ(b->isolate()->stats.connections_opened.load(), 1u);
  // Isolate0 did none of it.
  EXPECT_EQ(fw->frameworkIsolate()->stats.io_bytes_written.load(), 0u);
}

TEST_F(AcctFixture, CallsInCountsMigrationsIntoTheIsolate) {
  Bundle* provider = fw->install(makeCounterProvider("p", "svc"));
  Bundle* client = fw->install(makeCounterClient("c", "svc"));
  fw->start(provider);
  fw->start(client);
  const u64 before = provider->isolate()->stats.calls_in.load();
  JThread* t = vm->mainThread();
  vm->callStaticIn(t, client->loader(), "c/Client", "callMany", "(I)I",
                   {Value::ofInt(123)});
  EXPECT_EQ(provider->isolate()->stats.calls_in.load() - before, 123u);
}

TEST_F(AcctFixture, CpuSamplerChargesTheRunningIsolate) {
  BundleDescriptor desc;
  desc.symbolic_name = "spinner";
  {
    ClassBuilder cb("cpu/Main");
    auto& m = cb.method("spin", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label loop = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(1);
    m.bind(loop).iload(0).ifle(done);
    m.iload(1).iload(0).ixor().istore(1);
    m.iinc(0, -1).gotoLabel(loop);
    m.bind(done).iload(1).ireturn();
    desc.classes.push_back(cb.build());
  }
  Bundle* b = fw->install(std::move(desc));
  fw->start(b);
  const u64 before = b->isolate()->stats.cpu_samples.load();
  JThread* t = vm->mainThread();
  // ~200 ms of spinning inside the bundle's isolate.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < deadline) {
    vm->callStaticIn(t, b->loader(), "cpu/Main", "spin", "(I)I",
                     {Value::ofInt(200000)});
  }
  EXPECT_GT(b->isolate()->stats.cpu_samples.load(), before)
      << "sampler never caught the spinning isolate";
}

TEST_F(AcctFixture, SharedModeKeepsNoPerIsolateCharges) {
  VM vm2(VmOptions::shared());
  installSystemLibrary(vm2);
  Framework fw2(vm2);
  defineCounterApi(fw2);
  Bundle* p = fw2.install(makeCounterProvider("sp", "ssvc"));
  Bundle* c = fw2.install(makeCounterClient("sc", "ssvc"));
  fw2.start(p);
  fw2.start(c);
  vm2.callStaticIn(vm2.mainThread(), c->loader(), "sc/Client", "callMany",
                   "(I)I", {Value::ofInt(50)});
  // No migration, no accounting: the baseline VM has nothing to report.
  EXPECT_EQ(p->isolate()->stats.calls_in.load(), 0u);
  EXPECT_EQ(p->isolate()->stats.bytes_allocated.load(), 0u);
}

TEST_F(AcctFixture, ReportAllCoversEveryIsolate) {
  Bundle* p = fw->install(makeCounterProvider("r1", "r1.svc"));
  fw->start(p);
  std::vector<IsolateReport> reports = vm->reportAll();
  ASSERT_EQ(reports.size(), 2u);  // framework + bundle
  EXPECT_EQ(reports[0].name, "osgi-framework");
  EXPECT_EQ(reports[1].name, "r1");
  EXPECT_EQ(reports[1].state, IsolateState::Active);
}

TEST_F(AcctFixture, FelixProfileBootsAndRegistersServices) {
  std::vector<Bundle*> bundles = bootProfile(*fw, felixProfile());
  EXPECT_EQ(bundles.size(), 3u);
  for (Bundle* b : bundles) {
    EXPECT_EQ(b->state(), BundleState::Active);
    EXPECT_NE(fw->getService(b->symbolicName() + ".svc"), nullptr);
  }
}

TEST_F(AcctFixture, IsolatedFootprintExceedsSharedFootprint) {
  MemoryFootprint iso_fp;
  MemoryFootprint shr_fp;
  {
    VM v(VmOptions::isolated());
    installSystemLibrary(v);
    Framework f(v);
    bootProfile(f, felixProfile());
    iso_fp = measureFootprint(v);
  }
  {
    VM v(VmOptions::shared());
    installSystemLibrary(v);
    Framework f(v);
    bootProfile(f, felixProfile());
    shr_fp = measureFootprint(v);
  }
  // Figure 3's direction: per-isolate duplication costs memory.
  EXPECT_GT(iso_fp.total(), shr_fp.total());
  // ...but within the paper's bound (below 16%).
  EXPECT_LT(static_cast<double>(iso_fp.total()),
            static_cast<double>(shr_fp.total()) * 1.16);
}

}  // namespace
}  // namespace ijvm
