// Isolate termination (paper section 3.3), beyond the attack suite:
// privilege checks, poisoning, stack patching through nested frames,
// uncatchability inside the dying isolate, Dead-state transition.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "bytecode/builder.h"
#include "heap/object.h"
#include "osgi/framework.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

namespace ijvm {
namespace {

struct TermFixture : ::testing::Test {
  void SetUp() override {
    vm = std::make_unique<VM>();
    installSystemLibrary(*vm);
    fw = std::make_unique<Framework>(*vm);
    defineCounterApi(*fw);
  }
  void TearDown() override {
    fw.reset();
    vm.reset();
  }
  std::unique_ptr<VM> vm;
  std::unique_ptr<Framework> fw;
};

TEST_F(TermFixture, OnlyIsolate0MayTerminate) {
  Bundle* a = fw->install(makeCounterProvider("ta", "ta.svc"));
  Bundle* b = fw->install(makeCounterProvider("tb", "tb.svc"));
  fw->start(a);
  fw->start(b);

  // A thread currently running in a standard isolate must be refused.
  JThread* t = vm->attachThread("intruder", a->isolate());
  EXPECT_FALSE(vm->terminateIsolate(t, b->isolate()));
  ASSERT_NE(t->pending_exception, nullptr);
  EXPECT_NE(vm->pendingMessage(t).find("SecurityException"), std::string::npos);
  vm->clearPending(t);
  EXPECT_TRUE(b->isolate()->isActive());

  // Isolate0 cannot be terminated either.
  EXPECT_FALSE(vm->terminateIsolate(vm->mainThread(), fw->frameworkIsolate()));
  vm->clearPending(vm->mainThread());
  vm->detachThread(t);
}

TEST_F(TermFixture, DyingIsolateCannotCatchStoppedIsolateException) {
  // A bundle whose method wraps the *entire body* in catch(Throwable) and
  // calls a helper; after termination the exception must STILL escape.
  BundleDescriptor desc;
  desc.symbolic_name = "sneaky";
  {
    ClassBuilder cb("sn/Main");
    auto& helper = cb.method("helper", "()I", ACC_PUBLIC | ACC_STATIC);
    helper.iconst(5).ireturn();
    auto& m = cb.method("guarded", "()I", ACC_PUBLIC | ACC_STATIC);
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    m.bind(from);
    m.invokestatic("sn/Main", "helper", "()I");
    m.bind(to).ireturn();
    m.bind(handler).pop().iconst(-99).ireturn();  // tries to swallow
    m.handler(from, to, handler, "java/lang/Throwable");
    desc.classes.push_back(cb.build());
  }
  Bundle* b = fw->install(std::move(desc));
  fw->start(b);

  JThread* t = vm->mainThread();
  Value before = vm->callStaticIn(t, b->loader(), "sn/Main", "guarded", "()I", {});
  EXPECT_EQ(before.asInt(), 5);

  fw->killBundle(b);
  vm->callStaticIn(t, b->loader(), "sn/Main", "guarded", "()I", {});
  // The bundle's catch-all must NOT have swallowed the termination: the
  // exception reaches the host caller.
  ASSERT_NE(t->pending_exception, nullptr);
  EXPECT_NE(vm->pendingMessage(t).find("StoppedIsolate"), std::string::npos);
  vm->clearPending(t);
}

TEST_F(TermFixture, KillOnReturnPatchesDeepStacks) {
  // victim -> attacker -> victim-callback: when the attacker dies while a
  // thread is parked below it, the return into the dying frame raises SIE
  // and the victim's lower frame catches it.
  {
    ClassBuilder itf("api/Relay", "", ACC_PUBLIC | ACC_INTERFACE);
    itf.abstractMethod("relay", "(I)I");
    fw->frameworkIsolate()->loader->define(itf.build());
  }
  BundleDescriptor attacker;
  attacker.symbolic_name = "middle";
  {
    ClassBuilder cb("mid/Impl");
    cb.addInterface("api/Relay");
    auto& relay = cb.method("relay", "(I)I");
    // sleeps (interruptibly), then returns arg+1
    relay.lconst(600000).invokestatic("java/lang/Thread", "sleep", "(J)V");
    relay.iload(1).iconst(1).iadd().ireturn();
    attacker.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("mid/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.aload(1).ldcStr("relay.svc");
    start.newDefault("mid/Impl");
    start.invokevirtual("osgi/BundleContext", "registerService",
                        "(Ljava/lang/String;Ljava/lang/Object;)V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    attacker.classes.push_back(cb.build());
    attacker.activator = "mid/Activator";
  }
  BundleDescriptor victim;
  victim.symbolic_name = "caller";
  {
    ClassBuilder cb("cal/Main");
    cb.field("svc", "Lapi/Relay;", ACC_PUBLIC | ACC_STATIC);
    auto& m = cb.method("go", "()I", ACC_PUBLIC | ACC_STATIC);
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    m.bind(from);
    m.getstatic("cal/Main", "svc", "Lapi/Relay;").iconst(10);
    m.invokeinterface("api/Relay", "relay", "(I)I");
    m.bind(to).ireturn();
    m.bind(handler).pop().iconst(-7).ireturn();
    m.handler(from, to, handler, "java/lang/Throwable");
    victim.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("cal/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.aload(1).ldcStr("relay.svc");
    start.invokevirtual("osgi/BundleContext", "getService",
                        "(Ljava/lang/String;)Ljava/lang/Object;");
    start.checkcast("api/Relay");
    start.putstatic("cal/Main", "svc", "Lapi/Relay;");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    victim.classes.push_back(cb.build());
    victim.activator = "cal/Activator";
  }

  Bundle* mid = fw->install(std::move(attacker));
  Bundle* cal = fw->install(std::move(victim));
  fw->start(mid);
  fw->start(cal);

  // Run the victim call on a separate thread; it parks inside the attacker.
  std::atomic<bool> done{false};
  std::atomic<i32> result{0};
  JThread* ct = vm->attachThread("deep-call", fw->frameworkIsolate());
  std::thread worker([&] {
    Value r = vm->callStaticIn(ct, cal->loader(), "cal/Main", "go", "()I", {});
    result.store(r.asInt());
    ct->pending_exception = nullptr;
    done.store(true);
    vm->detachThread(ct);
  });
  // Wait until the call is parked in the attacker's sleep.
  for (int i = 0; i < 5000 && mid->isolate()->stats.sleeping_threads.load() == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(mid->isolate()->stats.sleeping_threads.load(), 1);

  fw->killBundle(mid);
  for (int i = 0; i < 5000 && !done.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(done.load()) << "victim never regained control";
  EXPECT_EQ(result.load(), -7);  // SIE caught by the victim's handler
  worker.join();
}

TEST_F(TermFixture, TerminatedIsolateBecomesDeadAfterObjectsReclaimed) {
  Bundle* b = fw->install(makeCounterProvider("dying", "dying.svc"));
  fw->start(b);
  ASSERT_NE(fw->getService("dying.svc"), nullptr);
  fw->killBundle(b);
  // killBundle dropped the service ref and ran a GC: no objects of the
  // bundle's classes remain -> Dead.
  EXPECT_EQ(b->isolate()->state.load(), IsolateState::Dead);
}

TEST_F(TermFixture, NewInstanceOfDyingClassIsRefused) {
  BundleDescriptor desc;
  desc.symbolic_name = "fact";
  {
    ClassBuilder cb("fx/Thing");
    cb.field("x", "I");
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("fx/Maker");
    auto& mk = cb.method("make", "()Ljava/lang/Object;", ACC_PUBLIC | ACC_STATIC);
    mk.newDefault("fx/Thing").areturn();
    desc.classes.push_back(cb.build());
  }
  Bundle* b = fw->install(std::move(desc));
  fw->start(b);

  JThread* t = vm->mainThread();
  Value obj = vm->callStaticIn(t, b->loader(), "fx/Maker", "make",
                               "()Ljava/lang/Object;", {});
  ASSERT_NE(obj.asRef(), nullptr);

  fw->killBundle(b);
  vm->callStaticIn(t, b->loader(), "fx/Maker", "make", "()Ljava/lang/Object;", {});
  ASSERT_NE(t->pending_exception, nullptr);
  EXPECT_NE(vm->pendingMessage(t).find("StoppedIsolate"), std::string::npos);
  vm->clearPending(t);
}

TEST_F(TermFixture, TerminateIsIdempotent) {
  Bundle* b = fw->install(makeCounterProvider("twice", "twice.svc"));
  fw->start(b);
  EXPECT_TRUE(vm->terminateIsolate(vm->mainThread(), b->isolate()));
  EXPECT_TRUE(vm->terminateIsolate(vm->mainThread(), b->isolate()));  // no-op
  fw->killBundle(b);  // full cleanup also fine afterwards
}

}  // namespace
}  // namespace ijvm
