// String semantics under isolation (paper sections 3.1 / 3.5):
//  * each isolate has its own interned-string map;
//  * the same literal in two bundles yields DIFFERENT objects in isolated
//    mode -- `==` (IF_ACMPEQ) across bundles is false, equals() is true;
//  * in shared mode the baseline behaviour (one shared object) holds.
#include <gtest/gtest.h>

#include "bytecode/builder.h"
#include "heap/object.h"
#include "osgi/framework.h"
#include "stdlib/system_library.h"

namespace ijvm {
namespace {

// A bundle exposing its interned literal and comparison helpers.
BundleDescriptor makeStringBundle(const std::string& name, const std::string& pkg) {
  BundleDescriptor desc;
  desc.symbolic_name = name;
  ClassBuilder cb(pkg + "/Str");
  auto& lit = cb.method("literal", "()Ljava/lang/String;", ACC_PUBLIC | ACC_STATIC);
  lit.ldcStr("THE_SHARED_LITERAL").areturn();
  auto& same = cb.method("sameAs", "(Ljava/lang/String;)I", ACC_PUBLIC | ACC_STATIC);
  Label eq = same.newLabel();
  same.ldcStr("THE_SHARED_LITERAL").aload(0).ifAcmpEq(eq);
  same.iconst(0).ireturn();
  same.bind(eq).iconst(1).ireturn();
  auto& equals = cb.method("equalsTo", "(Ljava/lang/String;)I",
                           ACC_PUBLIC | ACC_STATIC);
  equals.ldcStr("THE_SHARED_LITERAL").aload(0);
  equals.invokevirtual("java/lang/String", "equals", "(Ljava/lang/Object;)I");
  equals.ireturn();
  desc.classes.push_back(cb.build());
  return desc;
}

struct StringIsolationFixture : ::testing::TestWithParam<bool> {};

TEST_P(StringIsolationFixture, LiteralIdentityDependsOnMode) {
  const bool isolated = GetParam();
  VM vm(isolated ? VmOptions::isolated() : VmOptions::shared());
  installSystemLibrary(vm);
  Framework fw(vm);
  Bundle* a = fw.install(makeStringBundle("a", "sa"));
  Bundle* b = fw.install(makeStringBundle("b", "sb"));
  fw.start(a);
  fw.start(b);

  JThread* t = vm.mainThread();
  Value lit_a = vm.callStaticIn(t, a->loader(), "sa/Str", "literal",
                                "()Ljava/lang/String;", {});
  Value lit_b = vm.callStaticIn(t, b->loader(), "sb/Str", "literal",
                                "()Ljava/lang/String;", {});
  ASSERT_EQ(t->pending_exception, nullptr) << vm.pendingMessage(t);
  ASSERT_NE(lit_a.asRef(), nullptr);
  ASSERT_NE(lit_b.asRef(), nullptr);

  if (isolated) {
    // Paper 3.5: "each bundle has its map of strings, therefore the ==
    // operator does not work for strings allocated by different bundles."
    EXPECT_NE(lit_a.asRef(), lit_b.asRef());
    Value same = vm.callStaticIn(t, a->loader(), "sa/Str", "sameAs",
                                 "(Ljava/lang/String;)I", {lit_b});
    EXPECT_EQ(same.asInt(), 0);
  } else {
    EXPECT_EQ(lit_a.asRef(), lit_b.asRef());
    Value same = vm.callStaticIn(t, a->loader(), "sa/Str", "sameAs",
                                 "(Ljava/lang/String;)I", {lit_b});
    EXPECT_EQ(same.asInt(), 1);
  }
  // equals() works in both modes ("Programmers should use equals instead").
  Value eq = vm.callStaticIn(t, a->loader(), "sa/Str", "equalsTo",
                             "(Ljava/lang/String;)I", {lit_b});
  EXPECT_EQ(eq.asInt(), 1);
}

INSTANTIATE_TEST_SUITE_P(BothModes, StringIsolationFixture, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "isolated" : "shared";
                         });

TEST(StringIsolation, SameBundleLiteralIsInternedOnce) {
  VM vm;
  installSystemLibrary(vm);
  Framework fw(vm);
  Bundle* a = fw.install(makeStringBundle("solo", "solo"));
  fw.start(a);
  JThread* t = vm.mainThread();
  Value l1 = vm.callStaticIn(t, a->loader(), "solo/Str", "literal",
                             "()Ljava/lang/String;", {});
  Value l2 = vm.callStaticIn(t, a->loader(), "solo/Str", "literal",
                             "()Ljava/lang/String;", {});
  EXPECT_EQ(l1.asRef(), l2.asRef());  // == works within one bundle
}

TEST(StringIsolation, InternReturnsPerIsolateCanonicalObject) {
  VM vm;
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");
  vm.createIsolate(app, "app");
  JThread* t = vm.mainThread();
  Object* raw1 = vm.newStringObject(t, "xyzzy");
  Object* raw2 = vm.newStringObject(t, "xyzzy");
  EXPECT_NE(raw1, raw2);  // fresh strings are distinct objects
  Object* i1 = vm.internString(t, "xyzzy");
  Object* i2 = vm.internString(t, "xyzzy");
  EXPECT_EQ(i1, i2);  // interning canonicalizes
}

TEST(StringIsolation, StringNativesBehave) {
  VM vm;
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");
  vm.createIsolate(app, "app");

  ClassBuilder cb("s/Ops");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  // "hello world".substring(6, 11).startsWith("wor") ? charAt(0) : -1
  Label bad = m.newLabel();
  m.ldcStr("hello world").iconst(6).iconst(11);
  m.invokevirtual("java/lang/String", "substring", "(II)Ljava/lang/String;");
  m.astore(0);
  m.aload(0).ldcStr("wor");
  m.invokevirtual("java/lang/String", "startsWith", "(Ljava/lang/String;)I");
  m.ifeq(bad);
  m.aload(0).iconst(0).invokevirtual("java/lang/String", "charAt", "(I)I");
  m.ireturn();
  m.bind(bad).iconst(-1).ireturn();
  app->define(cb.build());

  Value r = vm.callStaticIn(vm.mainThread(), app, "s/Ops", "f", "()I", {});
  ASSERT_EQ(vm.mainThread()->pending_exception, nullptr)
      << vm.pendingMessage(vm.mainThread());
  EXPECT_EQ(r.asInt(), 'w');
}

TEST(StringIsolation, HashCodeMatchesJavaAlgorithm) {
  VM vm;
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");
  vm.createIsolate(app, "app");
  JThread* t = vm.mainThread();
  Object* s = vm.newStringObject(t, "Hello");
  Value h = vm.callVirtual(t, s, "hashCode", "()I", {});
  EXPECT_EQ(h.asInt(), 69609650);  // Java's "Hello".hashCode()
}

}  // namespace
}  // namespace ijvm
