// Units for the two lowest-level concurrency substrates: in-memory byte
// channels (the I/O + RMI transport) and object monitors.
#include <gtest/gtest.h>

#include <thread>

#include "heap/monitor.h"
#include "stdlib/channels.h"

namespace ijvm {
namespace {

TEST(ByteChannelTest, PairDeliversInBothDirections) {
  auto [a, b] = ByteChannel::pair();
  a->write("hello");
  std::string got;
  ASSERT_TRUE(b->readFully(&got, 5));
  EXPECT_EQ(got, "hello");
  b->write("world!");
  ASSERT_TRUE(a->readFully(&got, 6));
  EXPECT_EQ(got, "world!");
}

TEST(ByteChannelTest, LoopbackReadsOwnWrites) {
  auto ch = ByteChannel::loopback();
  ch->write("abc");
  EXPECT_EQ(ch->pendingBytes(), 3u);
  std::string got;
  ASSERT_TRUE(ch->readFully(&got, 3));
  EXPECT_EQ(got, "abc");
  EXPECT_EQ(ch->pendingBytes(), 0u);
}

TEST(ByteChannelTest, ReadBlocksUntilDataArrives) {
  auto [a, b] = ByteChannel::pair();
  std::string got;
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a->write("late");
  });
  ASSERT_TRUE(b->readFully(&got, 4));
  EXPECT_EQ(got, "late");
  writer.join();
}

TEST(ByteChannelTest, CancelFlagUnblocksReader) {
  auto [a, b] = ByteChannel::pair();
  std::atomic<bool> cancel{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.store(true);
  });
  u8 buf[4];
  EXPECT_EQ(b->read(buf, 4, &cancel), SIZE_MAX);
  canceller.join();
  (void)a;
}

TEST(ByteChannelTest, CloseEndsReads) {
  auto [a, b] = ByteChannel::pair();
  a->write("xy");
  a->close();
  std::string got;
  ASSERT_TRUE(b->readFully(&got, 2));  // buffered data still readable
  u8 buf[1];
  EXPECT_EQ(b->read(buf, 1), 0u);  // then EOF
}

TEST(ChannelHubTest, ConnectAcceptRendezvous) {
  ChannelHub hub;
  std::shared_ptr<ByteChannel> server;
  std::thread acceptor([&] { server = hub.accept("svc"); });
  auto client = hub.connect("svc");
  acceptor.join();
  ASSERT_NE(server, nullptr);
  client->write("ping");
  std::string got;
  ASSERT_TRUE(server->readFully(&got, 4));
  EXPECT_EQ(got, "ping");
}

TEST(ChannelHubTest, AcceptHonoursCancel) {
  ChannelHub hub;
  std::atomic<bool> cancel{true};
  EXPECT_EQ(hub.accept("nobody", &cancel), nullptr);
}

TEST(MonitorTest, TryEnterAndRecursion) {
  Monitor m;
  int self = 0;
  EXPECT_TRUE(m.tryEnter(&self));
  EXPECT_TRUE(m.tryEnter(&self));  // recursive
  int other = 0;
  EXPECT_FALSE(m.tryEnter(&other));
  EXPECT_TRUE(m.exit(&self));
  EXPECT_FALSE(m.tryEnter(&other));  // still held once
  EXPECT_TRUE(m.exit(&self));
  EXPECT_TRUE(m.tryEnter(&other));  // now free
  EXPECT_TRUE(m.exit(&other));
}

TEST(MonitorTest, ExitByNonOwnerFails) {
  Monitor m;
  int self = 0, other = 0;
  ASSERT_TRUE(m.tryEnter(&self));
  EXPECT_FALSE(m.exit(&other));
  EXPECT_TRUE(m.exit(&self));
}

TEST(MonitorTest, ContendedEnterWaitsForRelease) {
  Monitor m;
  int a = 0, b = 0;
  ASSERT_TRUE(m.tryEnter(&a));
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    m.enter(&b);
    acquired.store(true);
    m.exit(&b);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(acquired.load());
  m.exit(&a);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(MonitorTest, EnterCancelledByFlag) {
  Monitor m;
  int a = 0, b = 0;
  ASSERT_TRUE(m.tryEnter(&a));
  std::atomic<bool> cancel{false};
  std::atomic<bool> result{true};
  std::thread waiter([&] { result.store(m.enter(&b, &cancel)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cancel.store(true);
  waiter.join();
  EXPECT_FALSE(result.load());
  EXPECT_TRUE(m.exit(&a));
}

TEST(MonitorTest, WaitNotifyOne) {
  Monitor m;
  int waiter_id = 0, notifier_id = 0;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    ASSERT_TRUE(m.tryEnter(&waiter_id));
    Monitor::WaitResult r = m.wait(&waiter_id, 0, nullptr);
    EXPECT_EQ(r, Monitor::WaitResult::Notified);
    EXPECT_TRUE(m.ownedBy(&waiter_id));  // re-acquired
    m.exit(&waiter_id);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  m.enter(&notifier_id);
  m.notifyOne();
  m.exit(&notifier_id);
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(MonitorTest, TimedWaitTimesOut) {
  Monitor m;
  int self = 0;
  ASSERT_TRUE(m.tryEnter(&self));
  Monitor::WaitResult r = m.wait(&self, 20, nullptr);
  EXPECT_EQ(r, Monitor::WaitResult::TimedOut);
  EXPECT_TRUE(m.ownedBy(&self));
  m.exit(&self);
}

TEST(MonitorTest, WaitInterruptedByFlag) {
  Monitor m;
  int self = 0;
  std::atomic<bool> interrupted{false};
  ASSERT_TRUE(m.tryEnter(&self));
  std::thread interrupter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    interrupted.store(true);
  });
  Monitor::WaitResult r = m.wait(&self, 0, &interrupted);
  EXPECT_EQ(r, Monitor::WaitResult::Interrupted);
  m.exit(&self);
  interrupter.join();
}

TEST(MonitorTest, NotifyAllWakesEveryWaiter) {
  Monitor m;
  constexpr int kWaiters = 4;
  std::atomic<int> woke{0};
  int ids[kWaiters];
  std::vector<std::thread> threads;
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&, i] {
      m.enter(&ids[i]);
      if (m.wait(&ids[i], 0, nullptr) == Monitor::WaitResult::Notified) {
        woke.fetch_add(1);
      }
      m.exit(&ids[i]);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  int self = 0;
  m.enter(&self);
  m.notifyAll();
  m.exit(&self);
  for (auto& t : threads) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

}  // namespace
}  // namespace ijvm
