// The fusion execution tier (src/exec/fuse.cpp) and the polymorphic
// inline caches: hot adjacent pairs/triples must fuse into
// superinstructions with unchanged semantics, fusion must respect branch
// targets and the off switches, and virtual call sites must walk the
// documented mono -> 2-entry poly -> megamorphic state machine
// (docs/execution-tiers.md).
#include <gtest/gtest.h>

#include "admin/governor.h"
#include "bytecode/builder.h"
#include "exec/engine.h"
#include "exec/quickened.h"
#include "heap/object.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

namespace ijvm {
namespace {

VmOptions fusedOptions() {
  VmOptions opts = VmOptions::isolated();
  opts.exec_engine = ExecEngine::Quickened;
  opts.fusion_threshold = 0;  // force the tier on at the first opportunity
  return opts;
}

struct FusionVm {
  explicit FusionVm(VmOptions opts = fusedOptions()) : vm(opts) {
    installSystemLibrary(vm);
    app = vm.registry().newLoader("app");
  }
  // Isolate creation is deferred so tests can define classes first.
  void boot() { vm.createIsolate(app, "app"); }

  JMethod* method(const std::string& cls, const std::string& name,
                  const std::string& desc) {
    JClass* c = vm.registry().resolve(app, cls);
    return c == nullptr ? nullptr : c->findMethod(name, desc);
  }

  Value call(const std::string& cls, const std::string& name,
             const std::string& desc, std::vector<Value> args) {
    Value r = vm.callStaticIn(vm.mainThread(), app, cls, name, desc,
                              std::move(args));
    EXPECT_EQ(vm.mainThread()->pending_exception, nullptr)
        << vm.pendingMessage(vm.mainThread());
    return r;
  }

  VM vm;
  ClassLoader* app = nullptr;
};

// sum = 0; for (i = 0; i < n; i++) sum = sum + i * 2(via locals); return sum
// Shape: the loop head is ILOAD/ILOAD/IF_ICMPGE, the body has an
// ILOAD/ILOAD/IADD triple and the latch is IINC/GOTO -- all four fusible
// patterns the Figure-1 loops exercise.
void defineLoopClass(ClassBuilder& cb) {
  auto& m = cb.method("f", "(I)I", ACC_PUBLIC | ACC_STATIC);
  Label head = m.newLabel(), done = m.newLabel();
  m.iconst(0).istore(1);  // sum
  m.iconst(0).istore(2);  // i
  m.bind(head).iload(2).iload(0).ifIcmpGe(done);
  m.iload(1).iload(2).iadd().istore(1);
  m.iinc(2, 1).gotoLabel(head);
  m.bind(done).iload(1).ireturn();
}

// The fusion-behavior tests assert that streams *do* fuse, which the
// -DIJVM_DISABLE_FUSION build compiles out by design.
#ifdef IJVM_DISABLE_FUSION
#define IJVM_REQUIRE_FUSION() GTEST_SKIP() << "built with IJVM_DISABLE_FUSION"
#else
#define IJVM_REQUIRE_FUSION() (void)0
#endif

TEST(Fusion, HotPairsAndTriplesFuse) {
  IJVM_REQUIRE_FUSION();
  FusionVm f;
  {
    ClassBuilder cb("app/Loop");
    defineLoopClass(cb);
    f.app->define(cb.build());
  }
  f.boot();

  // First call quickens, second call crosses the (zero) threshold at entry
  // and fuses; both must compute the same sum.
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(100)}).asInt(), 4950);
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(100)}).asInt(), 4950);

  JMethod* m = f.method("app/Loop", "f", "(I)I");
  ASSERT_NE(m, nullptr);
  auto* qc = static_cast<exec::QCode*>(m->qcode.load());
  ASSERT_NE(qc, nullptr);
  EXPECT_TRUE(qc->fusion_done.load());
  EXPECT_GE(qc->fused_groups, 3u);

  std::string dis = exec::disasmQuickened(f.vm, m);
  EXPECT_NE(dis.find("ILOAD_ILOAD_IF_ICMPGE_F"), std::string::npos) << dis;
  EXPECT_NE(dis.find("ILOAD_ILOAD_IADD_F"), std::string::npos) << dis;
  EXPECT_NE(dis.find("IINC_GOTO_F"), std::string::npos) << dis;
  EXPECT_NE(dis.find("in fused group"), std::string::npos) << dis;

  // Fused semantics stay exact across sizes (including the 0-trip loop).
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(0)}).asInt(), 0);
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(1000)}).asInt(),
            499500);
}

TEST(Fusion, AloadGetfieldFusesAfterQuickening) {
  IJVM_REQUIRE_FUSION();
  FusionVm f;
  {
    ClassBuilder cb("app/Box");
    cb.field("x", "I", ACC_PUBLIC);
    auto& m = cb.method("get", "(Lapp/Box;)I", ACC_PUBLIC | ACC_STATIC);
    m.aload(0).getfield("app/Box", "x", "I").ireturn();
    f.app->define(cb.build());
  }
  f.boot();

  JThread* t = f.vm.mainThread();
  JClass* box = f.vm.registry().resolve(f.app, "app/Box");
  ASSERT_NE(box, nullptr);
  Object* obj = f.vm.allocObject(t, box);
  ASSERT_NE(obj, nullptr);
  JField* x = box->findField("x");
  ASSERT_NE(x, nullptr);
  obj->fields()[x->slot] = Value::ofInt(41);

  // Call 1 quickens GETFIELD -> GETFIELD_Q; call 2 fuses the pair.
  EXPECT_EQ(f.call("app/Box", "get", "(Lapp/Box;)I", {Value::ofRef(obj)}).asInt(), 41);
  EXPECT_EQ(f.call("app/Box", "get", "(Lapp/Box;)I", {Value::ofRef(obj)}).asInt(), 41);

  JMethod* m = f.method("app/Box", "get", "(Lapp/Box;)I");
  std::string dis = exec::disasmQuickened(f.vm, m);
  EXPECT_NE(dis.find("ALOAD_GETFIELD_F"), std::string::npos) << dis;
  EXPECT_NE(dis.find("app/Box.x"), std::string::npos) << dis;

  // The fused null check must throw the same NPE as the unfused stream.
  Value r = f.vm.callStaticIn(t, f.app, "app/Box", "get", "(Lapp/Box;)I",
                              {Value::nullRef()});
  (void)r;
  ASSERT_NE(t->pending_exception, nullptr);
  EXPECT_NE(f.vm.pendingMessage(t).find("NullPointerException"),
            std::string::npos);
  f.vm.clearPending(t);
}

TEST(Fusion, BranchTargetIntoGroupMiddlePreventsFusion) {
  IJVM_REQUIRE_FUSION();
  FusionVm f;
  {
    // The IADD of the ILOAD/ILOAD/IADD triple is itself a branch target
    // (another path jumps straight to it with its operands pushed): the
    // triple must not fuse, and the jump must keep working.
    //   f(flag, a, b): flag != 0 ? 10 + 20 : a + b
    //
    //   0: iload 0
    //   1: ifeq -> 5
    //   2: iconst 10
    //   3: iconst 20
    //   4: goto -> 7
    //   5: iload 1
    //   6: iload 2
    //   7: iadd        <- branch target inside the 5..7 triple
    //   8: ireturn
    ClassBuilder cb("app/Mid");
    auto& m = cb.method("f", "(III)I", ACC_PUBLIC | ACC_STATIC);
    Label norm = m.newLabel(), mid = m.newLabel();
    m.iload(0).ifeq(norm);
    m.iconst(10).iconst(20).gotoLabel(mid);
    m.bind(norm).iload(1).iload(2);
    m.bind(mid).iadd().ireturn();
    f.app->define(cb.build());
  }
  f.boot();

  EXPECT_EQ(f.call("app/Mid", "f", "(III)I",
                   {Value::ofInt(0), Value::ofInt(3), Value::ofInt(4)})
                .asInt(),
            7);
  EXPECT_EQ(f.call("app/Mid", "f", "(III)I",
                   {Value::ofInt(1), Value::ofInt(3), Value::ofInt(4)})
                .asInt(),
            30);
  EXPECT_EQ(f.call("app/Mid", "f", "(III)I",
                   {Value::ofInt(0), Value::ofInt(10), Value::ofInt(-2)})
                .asInt(),
            8);

  JMethod* m = f.method("app/Mid", "f", "(III)I");
  auto* qc = static_cast<exec::QCode*>(m->qcode.load());
  ASSERT_NE(qc, nullptr);
  ASSERT_TRUE(qc->fusion_done.load());
  // The head of the would-be triple must still be a plain ILOAD.
  EXPECT_EQ(qc->insns[5].op.load(), Op::ILOAD);
  EXPECT_EQ(qc->insns[7].op.load(), Op::IADD);
}

TEST(Fusion, OffSwitchesKeepStreamUnfused) {
  // Per-VM off switch.
  VmOptions off = fusedOptions();
  off.fusion = false;
  FusionVm f(off);
  {
    ClassBuilder cb("app/Loop");
    defineLoopClass(cb);
    f.app->define(cb.build());
  }
  f.boot();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(50)}).asInt(), 1225);
  }
  JMethod* m = f.method("app/Loop", "f", "(I)I");
  auto* qc = static_cast<exec::QCode*>(m->qcode.load());
  ASSERT_NE(qc, nullptr);
  EXPECT_FALSE(qc->fusion_done.load());
  EXPECT_EQ(exec::disasmQuickened(f.vm, m).find("_F"), std::string::npos);
}

TEST(Fusion, DefaultThresholdPromotesOnlyHotMethods) {
  IJVM_REQUIRE_FUSION();
  VmOptions opts = VmOptions::isolated();  // default threshold (256)
  FusionVm f(opts);
  {
    ClassBuilder cb("app/Loop");
    defineLoopClass(cb);
    f.app->define(cb.build());
  }
  f.boot();
  // Two cold calls: 2 invocations + ~20 back-edges stay under threshold.
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(10)}).asInt(), 45);
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(10)}).asInt(), 45);
  JMethod* m = f.method("app/Loop", "f", "(I)I");
  auto* qc = static_cast<exec::QCode*>(m->qcode.load());
  ASSERT_NE(qc, nullptr);
  EXPECT_FALSE(qc->fusion_done.load());

  // A burst of calls crosses it (invocations + edges > 256).
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(10)}).asInt(), 45);
  }
  EXPECT_TRUE(qc->fusion_done.load());
}

TEST(Fusion, PartialFirstInvocationPassThenCompletePass) {
  IJVM_REQUIRE_FUSION();
  FusionVm f;
  {
    ClassBuilder cb("app/Box");
    cb.field("x", "I", ACC_PUBLIC);
    f.app->define(cb.build());
  }
  {
    // Hot inside its very first invocation (loop > one 4096-edge batch),
    // with a fusible ALOAD+GETFIELD pair *after* the loop: the mid-loop
    // promotion runs a partial pass (the tail has not quickened yet), and
    // the complete pass at the next entry picks the tail up.
    //   static int f(Box b, int n) {
    //     int s = 0; for (int i = 0; i < n; i++) s += i;
    //     return s + b.x;
    //   }
    ClassBuilder cb("app/Hot");
    auto& m = cb.method("f", "(Lapp/Box;I)I", ACC_PUBLIC | ACC_STATIC);
    Label head = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(2);
    m.iconst(0).istore(3);
    m.bind(head).iload(3).iload(1).ifIcmpGe(done);
    m.iload(2).iload(3).iadd().istore(2);
    m.iinc(3, 1).gotoLabel(head);
    m.bind(done).iload(2);
    m.aload(0).getfield("app/Box", "x", "I");
    m.iadd().ireturn();
    f.app->define(cb.build());
  }
  f.boot();

  JThread* t = f.vm.mainThread();
  JClass* box = f.vm.registry().resolve(f.app, "app/Box");
  Object* obj = f.vm.allocObject(t, box);
  ASSERT_NE(obj, nullptr);
  obj->fields()[box->findField("x")->slot] = Value::ofInt(7);

  // Call 1: 10000 back-edges cross a batch flush mid-loop -> partial pass.
  EXPECT_EQ(f.call("app/Hot", "f", "(Lapp/Box;I)I",
                   {Value::ofRef(obj), Value::ofInt(10000)})
                .asInt(),
            49995000 + 7);
  JMethod* m = f.method("app/Hot", "f", "(Lapp/Box;I)I");
  auto* qc = static_cast<exec::QCode*>(m->qcode.load());
  ASSERT_NE(qc, nullptr);
  EXPECT_TRUE(qc->fusion_partial.load());
  EXPECT_FALSE(qc->fusion_done.load());
  std::string dis = exec::disasmQuickened(f.vm, m);
  EXPECT_NE(dis.find("IINC_GOTO_F"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("ALOAD_GETFIELD_F"), std::string::npos)
      << "tail pair fused before it quickened:\n"
      << dis;

  // Call 2: the complete pass fuses the now-quickened tail and retires
  // the method from promotion checks.
  EXPECT_EQ(f.call("app/Hot", "f", "(Lapp/Box;I)I",
                   {Value::ofRef(obj), Value::ofInt(10)})
                .asInt(),
            45 + 7);
  EXPECT_TRUE(qc->fusion_done.load());
  dis = exec::disasmQuickened(f.vm, m);
  EXPECT_NE(dis.find("ALOAD_GETFIELD_F"), std::string::npos) << dis;
}

TEST(Fusion, RecursiveEntryDoesNotRetireStillQuickeningStream) {
  IJVM_REQUIRE_FUSION();
  FusionVm f;
  {
    ClassBuilder cb("app/Box");
    cb.field("x", "I", ACC_PUBLIC);
    f.app->define(cb.build());
  }
  {
    // Recursive, with a fusible ALOAD+GETFIELD pair *after* the recursive
    // call: nested entries bump the invocation counter while the first
    // execution is still on the stack and that pair has never run. The
    // complete pass must wait for a finished execution, then fuse it.
    //   static int f(Box b, int n) { return n <= 0 ? b.x : f(b, n-1) + b.x; }
    ClassBuilder cb("app/Rec");
    auto& m = cb.method("f", "(Lapp/Box;I)I", ACC_PUBLIC | ACC_STATIC);
    Label base = m.newLabel();
    m.iload(1).ifle(base);
    m.aload(0).iload(1).iconst(1).isub();
    m.invokestatic("app/Rec", "f", "(Lapp/Box;I)I");
    m.aload(0).getfield("app/Box", "x", "I");
    m.iadd().ireturn();
    m.bind(base).aload(0).getfield("app/Box", "x", "I").ireturn();
    f.app->define(cb.build());
  }
  f.boot();

  JThread* t = f.vm.mainThread();
  JClass* box = f.vm.registry().resolve(f.app, "app/Box");
  Object* obj = f.vm.allocObject(t, box);
  ASSERT_NE(obj, nullptr);
  obj->fields()[box->findField("x")->slot] = Value::ofInt(3);

  EXPECT_EQ(f.call("app/Rec", "f", "(Lapp/Box;I)I",
                   {Value::ofRef(obj), Value::ofInt(5)})
                .asInt(),
            18);
  EXPECT_EQ(f.call("app/Rec", "f", "(Lapp/Box;I)I",
                   {Value::ofRef(obj), Value::ofInt(5)})
                .asInt(),
            18);

  JMethod* m = f.method("app/Rec", "f", "(Lapp/Box;I)I");
  auto* qc = static_cast<exec::QCode*>(m->qcode.load());
  ASSERT_NE(qc, nullptr);
  EXPECT_TRUE(qc->fusion_done.load());
  std::string dis = exec::disasmQuickened(f.vm, m);
  EXPECT_NE(dis.find("ALOAD_GETFIELD_F"), std::string::npos)
      << "post-call pair lost to a premature complete pass:\n"
      << dis;
}

// ---- the polymorphic IC state machine ----

struct IcVm {
  IcVm() : vm(fusedOptions()) {
    installSystemLibrary(vm);
    app = vm.registry().newLoader("app");
    {
      ClassBuilder base("app/Base");
      auto& m = base.method("tag", "()I", ACC_PUBLIC);
      m.iconst(0).ireturn();
      app->define(base.build());
    }
    for (int k = 1; k <= 12; ++k) {
      ClassBuilder sub("app/Sub" + std::to_string(k), "app/Base");
      auto& m = sub.method("tag", "()I", ACC_PUBLIC);
      m.iconst(k).ireturn();
      app->define(sub.build());
    }
    {
      ClassBuilder cb("app/Drive");
      auto& m = cb.method("call", "(Lapp/Base;)I", ACC_PUBLIC | ACC_STATIC);
      m.aload(0).invokevirtual("app/Base", "tag", "()I").ireturn();
      app->define(cb.build());
    }
    vm.createIsolate(app, "app");
  }

  i32 callWith(int k) {
    JThread* t = vm.mainThread();
    JClass* cls = vm.registry().resolve(app, "app/Sub" + std::to_string(k));
    EXPECT_NE(cls, nullptr);
    Object* obj = vm.allocObject(t, cls);
    EXPECT_NE(obj, nullptr);
    Value r = vm.callStaticIn(t, app, "app/Drive", "call", "(Lapp/Base;)I",
                              {Value::ofRef(obj)});
    EXPECT_EQ(t->pending_exception, nullptr) << vm.pendingMessage(t);
    return r.asInt();
  }

  // The IC installed at Drive.call's single virtual call site.
  exec::VCallIC* siteIc() {
    JMethod* m = vm.registry()
                     .resolve(app, "app/Drive")
                     ->findMethod("call", "(Lapp/Base;)I");
    auto* qc = static_cast<exec::QCode*>(m->qcode.load());
    if (qc == nullptr) return nullptr;
    for (auto& q : qc->insns) {
      if (q.op.load() == Op::INVOKEVIRTUAL_Q) {
        return static_cast<exec::VCallIC*>(q.ic.load());
      }
    }
    return nullptr;
  }

  VM vm;
  ClassLoader* app = nullptr;
};

TEST(PolymorphicIC, MonoToPolyToMegamorphic) {
  IcVm f;

  // One receiver class: monomorphic.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(f.callWith(1), 1);
  exec::VCallIC* ic = f.siteIc();
  ASSERT_NE(ic, nullptr);
  EXPECT_EQ(ic->ways(), 1);
  EXPECT_FALSE(ic->megamorphic);

  // A second receiver: one miss promotes to a 2-entry polymorphic cache
  // holding both classes; alternating between the two then hits forever
  // (the miss counter stays put).
  EXPECT_EQ(f.callWith(2), 2);
  ic = f.siteIc();
  ASSERT_NE(ic, nullptr);
  EXPECT_EQ(ic->ways(), 2);
  const u32 misses_after_poly = ic->misses.load();
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(f.callWith(1), 1);
    EXPECT_EQ(f.callWith(2), 2);
  }
  exec::VCallIC* after = f.siteIc();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after, ic) << "alternating bi-morphic receivers must not miss";
  EXPECT_EQ(after->misses.load(), misses_after_poly);

  // A parade of 12 classes blows past kMegamorphicMisses: the site pins
  // megamorphic (no ways, no further entry allocation) but dispatch stays
  // exact via the vtable.
  for (int round = 0; round < 3; ++round) {
    for (int k = 1; k <= 12; ++k) EXPECT_EQ(f.callWith(k), k);
  }
  ic = f.siteIc();
  ASSERT_NE(ic, nullptr);
  EXPECT_TRUE(ic->megamorphic);
  EXPECT_EQ(ic->ways(), 0);
  EXPECT_GE(ic->misses.load(), exec::kMegamorphicMisses);

  auto st = std::static_pointer_cast<exec::ExecState>(
      f.vm.getExtension(exec::kStateKey));
  ASSERT_NE(st, nullptr);
  // Installs stop at the pin: initial + one per miss until the pin.
  EXPECT_LE(st->vcall_ics.size(), exec::kMegamorphicMisses + 2);
}

// ---- the governor sees the same profile counters ----

TEST(HotBundleSignals, GovernorFlagsHotLoopBundle) {
  VmOptions opts = VmOptions::isolated();
  opts.gc_threshold = 512u << 10;
  opts.heap_limit = 64u << 20;
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);
  Bundle* micro = fw.install(makeMicroBundle("hot"));
  fw.start(micro);

  GovernorPolicy policy;
  policy.rules.push_back({Signal::MethodInvocationRate, 50.0, 1,
                          GovernorAction::Warn, "hot-invoke"});
  policy.rules.push_back({Signal::LoopBackEdgeRate, 1000.0, 1,
                          GovernorAction::Warn, "hot-loop"});
  policy.gc_if_allocated_bytes = 0;
  ResourceGovernor gov(fw, policy);

  // Drive interpreter-bound guest work in the bundle between ticks: the
  // per-tick deltas of the profile counters must flag it as hot. (Each
  // spinFor call is one invocation + 500 back-edges.)
  JThread* t = vm.mainThread();
  auto burn = [&] {
    for (int i = 0; i < 200; ++i) {
      vm.callStaticIn(t, micro->loader(), "micro/Bench", "spinFor", "(I)I",
                      {Value::ofInt(500)});
      ASSERT_EQ(t->pending_exception, nullptr) << vm.pendingMessage(t);
    }
  };
  bool invoke_seen = false, loop_seen = false;
  for (int i = 0; i < 6 && !(invoke_seen && loop_seen); ++i) {
    burn();
    for (const GovernorEvent& ev : gov.tick()) {
      if (ev.bundle_id != micro->id()) continue;
      invoke_seen |= ev.signal == Signal::MethodInvocationRate;
      loop_seen |= ev.signal == Signal::LoopBackEdgeRate;
    }
  }
  EXPECT_TRUE(loop_seen) << "hot loop back-edges not flagged";
  EXPECT_TRUE(invoke_seen) << "hot invocations not flagged";
  vm.shutdownAllThreads();
}

}  // namespace
}  // namespace ijvm
