// Heap & garbage collector: collection, reachability, and the per-isolate
// accounting pass (paper section 3.2's four-step algorithm).
#include <gtest/gtest.h>

#include "bytecode/builder.h"
#include "heap/object.h"
#include "osgi/framework.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

namespace ijvm {
namespace {

struct GcFixture : ::testing::Test {
  void SetUp() override {
    vm = std::make_unique<VM>();
    installSystemLibrary(*vm);
    app = vm->registry().newLoader("app");
    iso = vm->createIsolate(app, "app");

    ClassBuilder cb("g/Node");
    cb.field("next", "Lg/Node;");
    cb.field("payload", "[I");
    node_cls = app->define(cb.build());
    next_f = node_cls->findField("next");
    payload_f = node_cls->findField("payload");
  }
  void TearDown() override { vm.reset(); }

  bool alive(Object* o) {
    bool found = false;
    vm->heap().forEachObject([&](Object* x) {
      if (x == o) found = true;
    });
    return found;
  }

  std::unique_ptr<VM> vm;
  ClassLoader* app = nullptr;
  Isolate* iso = nullptr;
  JClass* node_cls = nullptr;
  JField* next_f = nullptr;
  JField* payload_f = nullptr;
};

TEST_F(GcFixture, UnreachableObjectsAreCollected) {
  JThread* t = vm->mainThread();
  Object* orphan = vm->allocObject(t, node_cls);
  ASSERT_TRUE(alive(orphan));
  vm->collectGarbage(t, nullptr);
  EXPECT_FALSE(alive(orphan));
}

TEST_F(GcFixture, GlobalRefKeepsGraphAlive) {
  JThread* t = vm->mainThread();
  LocalRootScope roots(t);
  Object* a = roots.add(vm->allocObject(t, node_cls));
  Object* b = roots.add(vm->allocObject(t, node_cls));
  Object* arr = roots.add(vm->allocArrayObject(
      t, vm->registry().arrayClass("[I"), 64));
  a->fields()[next_f->slot] = Value::ofRef(b);
  b->fields()[payload_f->slot] = Value::ofRef(arr);

  GlobalRef* ref = vm->addGlobalRef(a, iso);
  {
    // Drop the local roots; only the global ref remains.
  }
  vm->collectGarbage(t, nullptr);
  // Still alive via a -> b -> arr even though locals are gone... but the
  // LocalRootScope is still open here; close it by scoping properly below.
  vm->removeGlobalRef(ref);
  SUCCEED();
}

TEST_F(GcFixture, ChainSurvivesThroughSingleRoot) {
  JThread* t = vm->mainThread();
  Object* head;
  Object* tail;
  GlobalRef* ref;
  {
    LocalRootScope roots(t);
    head = roots.add(vm->allocObject(t, node_cls));
    tail = roots.add(vm->allocObject(t, node_cls));
    head->fields()[next_f->slot] = Value::ofRef(tail);
    ref = vm->addGlobalRef(head, iso);
  }
  vm->collectGarbage(t, nullptr);
  EXPECT_TRUE(alive(head));
  EXPECT_TRUE(alive(tail));

  vm->removeGlobalRef(ref);
  vm->collectGarbage(t, nullptr);
  EXPECT_FALSE(alive(head));
  EXPECT_FALSE(alive(tail));
}

TEST_F(GcFixture, CyclesAreCollected) {
  JThread* t = vm->mainThread();
  Object* a;
  Object* b;
  {
    LocalRootScope roots(t);
    a = roots.add(vm->allocObject(t, node_cls));
    b = roots.add(vm->allocObject(t, node_cls));
    a->fields()[next_f->slot] = Value::ofRef(b);
    b->fields()[next_f->slot] = Value::ofRef(a);
  }
  vm->collectGarbage(t, nullptr);
  EXPECT_FALSE(alive(a));
  EXPECT_FALSE(alive(b));
}

TEST_F(GcFixture, StaticsAreRoots) {
  ClassBuilder cb("g/Holder");
  cb.field("kept", "Lg/Node;", ACC_PUBLIC | ACC_STATIC);
  auto& set = cb.method("set", "(Lg/Node;)V", ACC_PUBLIC | ACC_STATIC);
  set.aload(0).putstatic("g/Holder", "kept", "Lg/Node;").ret();
  app->define(cb.build());

  JThread* t = vm->mainThread();
  Object* kept;
  {
    LocalRootScope roots(t);
    kept = roots.add(vm->allocObject(t, node_cls));
    vm->callStaticIn(t, app, "g/Holder", "set", "(Lg/Node;)V",
                     {Value::ofRef(kept)});
    ASSERT_EQ(t->pending_exception, nullptr) << vm->pendingMessage(t);
  }
  vm->collectGarbage(t, nullptr);
  EXPECT_TRUE(alive(kept));
}

TEST_F(GcFixture, ObjectChargedToFirstReferencingIsolate) {
  // Build a second isolate; both reference the same object; the accounting
  // pass charges it to exactly one of them (the first in id order).
  ClassLoader* other_loader = vm->registry().newLoader("other");
  Isolate* other = vm->createIsolate(other_loader, "other");

  JThread* t = vm->mainThread();
  Object* shared_obj;
  GlobalRef* r1;
  GlobalRef* r2;
  {
    LocalRootScope roots(t);
    shared_obj = roots.add(vm->allocArrayObject(
        t, vm->registry().arrayClass("[I"), 25000));  // ~100 KB
    r1 = vm->addGlobalRef(shared_obj, iso);    // id 0 (isolate0)
    r2 = vm->addGlobalRef(shared_obj, other);  // id 1
  }
  vm->collectGarbage(t, nullptr);
  u64 b0 = iso->stats.bytes_charged.load();
  u64 b1 = other->stats.bytes_charged.load();
  EXPECT_GE(b0, 100000u);  // charged to the first isolate...
  EXPECT_LT(b1, 100000u);  // ...not double-charged to the second
  EXPECT_EQ(shared_obj->charged_isolate, iso->id);

  // Release the first reference: the next GC re-charges to the survivor
  // ("usage is reinitialized to zero" each pass).
  vm->removeGlobalRef(r1);
  vm->collectGarbage(t, nullptr);
  EXPECT_EQ(shared_obj->charged_isolate, other->id);
  EXPECT_GE(other->stats.bytes_charged.load(), 100000u);
  vm->removeGlobalRef(r2);
}

TEST_F(GcFixture, GcTriggeredByAllocationThreshold) {
  VmOptions opts;
  opts.gc_threshold = 256u << 10;
  VM vm2(opts);
  installSystemLibrary(vm2);
  ClassLoader* l2 = vm2.registry().newLoader("app");
  l2->define([] {
    ClassBuilder cb("g/Churn");
    auto& m = cb.method("churn", "(I)V", ACC_PUBLIC | ACC_STATIC);
    Label loop = m.newLabel(), done = m.newLabel();
    m.bind(loop).iload(0).ifle(done);
    m.iconst(4096).newarray(Kind::Int).pop();
    m.iinc(0, -1).gotoLabel(loop);
    m.bind(done).ret();
    return cb.build();
  }());
  Isolate* iso2 = vm2.createIsolate(l2, "app");
  u64 before = vm2.gcCount();
  vm2.callStaticIn(vm2.mainThread(), l2, "g/Churn", "churn", "(I)V",
                   {Value::ofInt(1000)});  // ~16 MB of garbage
  EXPECT_GT(vm2.gcCount(), before);
  EXPECT_GT(iso2->stats.gc_activations.load(), 0u);
}

TEST_F(GcFixture, StringPayloadsAreFreedWithTheObject) {
  JThread* t = vm->mainThread();
  size_t live_before = vm->heap().liveBytes();
  for (int i = 0; i < 100; ++i) {
    vm->newStringObject(t, std::string(1000, 'x'));
  }
  EXPECT_GT(vm->heap().liveBytes(), live_before + 90000);
  vm->collectGarbage(t, nullptr);
  EXPECT_LE(vm->heap().liveBytes(), live_before + 10000);
}

TEST_F(GcFixture, NativePayloadsAreTraced) {
  // An ArrayList holding the only reference to an object: the payload's
  // trace() must keep the element alive.
  JThread* t = vm->mainThread();
  JClass* list_cls = vm->registry().systemLoader()->find("java/util/ArrayList");
  Object* element;
  GlobalRef* list_ref;
  {
    LocalRootScope roots(t);
    Object* list = roots.add(vm->allocObject(t, list_cls));
    element = roots.add(vm->allocObject(t, node_cls));
    vm->callVirtual(t, list, "add", "(Ljava/lang/Object;)I",
                    {Value::ofRef(element)});
    ASSERT_EQ(t->pending_exception, nullptr) << vm->pendingMessage(t);
    list_ref = vm->addGlobalRef(list, iso);
  }
  vm->collectGarbage(t, nullptr);
  EXPECT_TRUE(alive(element));
  vm->removeGlobalRef(list_ref);
  vm->collectGarbage(t, nullptr);
  EXPECT_FALSE(alive(element));
}

TEST_F(GcFixture, ConnectionsAreCountedPerIsolate) {
  JThread* t = vm->mainThread();
  JClass* conn_cls = vm->registry().systemLoader()->find("java/io/Connection");
  GlobalRef* refs[3];
  for (int i = 0; i < 3; ++i) {
    LocalRootScope roots(t);
    Object* conn = roots.add(vm->allocObject(t, conn_cls));
    refs[i] = vm->addGlobalRef(conn, iso);
  }
  vm->collectGarbage(t, nullptr);
  EXPECT_EQ(iso->stats.connections_charged.load(), 3u);
  // Closing a connection removes it from the count at the next GC.
  vm->callVirtual(t, refs[0]->obj, "close", "()V", {});
  vm->collectGarbage(t, nullptr);
  EXPECT_EQ(iso->stats.connections_charged.load(), 2u);
  for (auto* r : refs) vm->removeGlobalRef(r);
}

TEST_F(GcFixture, PerIsolateLimitEnforcedAtAllocation) {
  VmOptions opts;
  opts.isolate_memory_limit = 1u << 20;  // 1 MiB
  opts.gc_threshold = 256u << 10;
  VM vm2(opts);
  installSystemLibrary(vm2);
  ClassLoader* l2 = vm2.registry().newLoader("app");
  l2->define([] {
    ClassBuilder cb("g/Hog");
    cb.field("sink", "Ljava/util/ArrayList;", ACC_PUBLIC | ACC_STATIC);
    auto& m = cb.method("grab", "()I", ACC_PUBLIC | ACC_STATIC);
    m.newDefault("java/util/ArrayList").putstatic("g/Hog", "sink",
                                                  "Ljava/util/ArrayList;");
    m.iconst(0).istore(0);
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    Label loop = m.newLabel();
    m.bind(from).bind(loop);
    m.getstatic("g/Hog", "sink", "Ljava/util/ArrayList;");
    m.iconst(8192).newarray(Kind::Int);
    m.invokevirtual("java/util/ArrayList", "add", "(Ljava/lang/Object;)I").pop();
    m.iinc(0, 1).gotoLabel(loop);
    m.bind(to).gotoLabel(loop);
    m.bind(handler).pop().iload(0).ireturn();
    m.handler(from, to, handler, "java/lang/OutOfMemoryError");
    return cb.build();
  }());
  vm2.createIsolate(l2, "app");
  Value grabbed = vm2.callStaticIn(vm2.mainThread(), l2, "g/Hog", "grab", "()I", {});
  ASSERT_EQ(vm2.mainThread()->pending_exception, nullptr);
  // ~32 KiB per chunk against a 1 MiB budget: roughly 30 chunks.
  EXPECT_GT(grabbed.asInt(), 10);
  EXPECT_LT(grabbed.asInt(), 64);
}

TEST_F(GcFixture, SweptBlocksAreRecycledBySameSizeAllocations) {
  JThread* t = vm->mainThread();
  JClass* int_arr = vm->registry().arrayClass("[I");
  auto churn = [&] {
    for (int i = 0; i < 16; ++i) vm->allocArrayObject(t, int_arr, 4096);
    vm->collectGarbage(t, nullptr);  // nothing roots the arrays
  };
  churn();
  if (vm->heap().cachedBytes() == 0) {
    GTEST_SKIP() << "block cache disabled (sanitizer build)";
  }
  // The second round allocates the same size classes the sweep just
  // retained, so its arrays must come out of the block cache instead of
  // the system allocator.
  const u64 recycled_before = vm->heap().recycledAllocs();
  churn();
  EXPECT_GE(vm->heap().recycledAllocs() - recycled_before, 16u);
}

}  // namespace
}  // namespace ijvm
