// Guest threads: start/join/interrupt, sleep, wait/notify, synchronized
// contention, thread accounting and migration of spawned threads.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "bytecode/builder.h"
#include "heap/object.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"

namespace ijvm {
namespace {

struct ThreadFixture : ::testing::Test {
  void SetUp() override {
    vm = std::make_unique<VM>();
    installSystemLibrary(*vm);
    app = vm->registry().newLoader("app");
    iso = vm->createIsolate(app, "app");
  }
  void TearDown() override { vm.reset(); }

  Value call(const std::string& cls, const std::string& method,
             const std::string& desc, std::vector<Value> args) {
    JThread* t = vm->mainThread();
    Value r = vm->callStaticIn(t, app, cls, method, desc, std::move(args));
    last_error = t->pending_exception != nullptr ? vm->pendingMessage(t) : "";
    vm->clearPending(t);
    return r;
  }

  std::unique_ptr<VM> vm;
  ClassLoader* app = nullptr;
  Isolate* iso = nullptr;
  std::string last_error;
};

// Worker that increments a static counter n times under a lock.
void defineCounterWorker(ClassLoader* app) {
  {
    ClassBuilder cb("th/Shared");
    cb.field("count", "I", ACC_PUBLIC | ACC_STATIC);
    cb.field("lock", "Ljava/lang/Object;", ACC_PUBLIC | ACC_STATIC);
    auto& clinit = cb.method("<clinit>", "()V", ACC_STATIC);
    clinit.newDefault("java/lang/Object").putstatic("th/Shared", "lock",
                                                    "Ljava/lang/Object;");
    clinit.ret();
    auto& get = cb.method("get", "()I", ACC_PUBLIC | ACC_STATIC);
    get.getstatic("th/Shared", "count", "I").ireturn();
    app->define(cb.build());
  }
  {
    ClassBuilder cb("th/Worker");
    cb.addInterface("java/lang/Runnable");
    cb.field("n", "I");
    auto& ctor = cb.method("<init>", "(I)V");
    ctor.aload(0).invokespecial("java/lang/Object", "<init>", "()V");
    ctor.aload(0).iload(1).putfield("th/Worker", "n", "I");
    ctor.ret();
    auto& run = cb.method("run", "()V");
    Label loop = run.newLabel(), done = run.newLabel();
    run.aload(0).getfield("th/Worker", "n", "I").istore(1);
    run.bind(loop).iload(1).ifle(done);
    run.getstatic("th/Shared", "lock", "Ljava/lang/Object;").astore(2);
    run.aload(2).monitorenter();
    run.getstatic("th/Shared", "count", "I").iconst(1).iadd();
    run.putstatic("th/Shared", "count", "I");
    run.aload(2).monitorexit();
    run.iinc(1, -1).gotoLabel(loop);
    run.bind(done).ret();
    app->define(cb.build());
  }
  {
    ClassBuilder cb("th/Main");
    auto& m = cb.method("race", "(I)I", ACC_PUBLIC | ACC_STATIC);
    // two threads, each incrementing n times; join; return count
    m.newObject("java/lang/Thread").dup();
    m.newObject("th/Worker").dup().iload(0);
    m.invokespecial("th/Worker", "<init>", "(I)V");
    m.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
    m.astore(1);
    m.newObject("java/lang/Thread").dup();
    m.newObject("th/Worker").dup().iload(0);
    m.invokespecial("th/Worker", "<init>", "(I)V");
    m.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
    m.astore(2);
    m.aload(1).invokevirtual("java/lang/Thread", "start", "()V");
    m.aload(2).invokevirtual("java/lang/Thread", "start", "()V");
    m.aload(1).invokevirtual("java/lang/Thread", "join", "()V");
    m.aload(2).invokevirtual("java/lang/Thread", "join", "()V");
    m.invokestatic("th/Shared", "get", "()I").ireturn();
    app->define(cb.build());
  }
}

TEST_F(ThreadFixture, TwoThreadsIncrementUnderLockWithoutLostUpdates) {
  defineCounterWorker(app);
  Value r = call("th/Main", "race", "(I)I", {Value::ofInt(2000)});
  EXPECT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), 4000);  // monitor prevents lost updates
  EXPECT_GE(iso->stats.threads_created.load(), 2u);
}

TEST_F(ThreadFixture, StartingAThreadTwiceThrows) {
  ClassBuilder cb("th/Twice");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
  m.newDefault("java/lang/Thread").astore(0);
  m.aload(0).invokevirtual("java/lang/Thread", "start", "()V");
  m.bind(from);
  m.aload(0).invokevirtual("java/lang/Thread", "start", "()V");
  m.bind(to).iconst(0).ireturn();
  m.bind(handler).pop().iconst(1).ireturn();
  m.handler(from, to, handler, "java/lang/IllegalStateException");
  app->define(cb.build());
  Value r = call("th/Twice", "f", "()I", {});
  EXPECT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), 1);
}

TEST_F(ThreadFixture, SleepIsInterruptible) {
  // sleeper() sleeps "forever"; interruptAfter() interrupts it; the sleeper
  // catches InterruptedException and records it.
  {
    ClassBuilder cb("th/Sleeper");
    cb.addInterface("java/lang/Runnable");
    cb.field("woke", "I", ACC_PUBLIC | ACC_STATIC);
    auto& run = cb.method("run", "()V");
    Label from = run.newLabel(), to = run.newLabel(), handler = run.newLabel();
    run.bind(from);
    run.lconst(600000).invokestatic("java/lang/Thread", "sleep", "(J)V");
    run.bind(to).ret();
    run.bind(handler).pop();
    run.iconst(1).putstatic("th/Sleeper", "woke", "I");
    run.ret();
    run.handler(from, to, handler, "java/lang/InterruptedException");
    app->define(cb.build());
  }
  {
    ClassBuilder cb("th/Main2");
    auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
    m.newObject("java/lang/Thread").dup();
    m.newDefault("th/Sleeper");
    m.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
    m.astore(0);
    m.aload(0).invokevirtual("java/lang/Thread", "start", "()V");
    // give it a moment to park, then interrupt and join
    m.lconst(50).invokestatic("java/lang/Thread", "sleep", "(J)V");
    m.aload(0).invokevirtual("java/lang/Thread", "interrupt", "()V");
    m.aload(0).invokevirtual("java/lang/Thread", "join", "()V");
    m.getstatic("th/Sleeper", "woke", "I").ireturn();
    app->define(cb.build());
  }
  Value r = call("th/Main2", "f", "()I", {});
  EXPECT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), 1);
}

TEST_F(ThreadFixture, WaitNotifyHandoff) {
  // A producer notifies a consumer waiting on a shared lock object.
  {
    ClassBuilder cb("th/Box");
    cb.field("lock", "Ljava/lang/Object;", ACC_PUBLIC | ACC_STATIC);
    cb.field("value", "I", ACC_PUBLIC | ACC_STATIC);
    auto& clinit = cb.method("<clinit>", "()V", ACC_STATIC);
    clinit.newDefault("java/lang/Object").putstatic("th/Box", "lock",
                                                    "Ljava/lang/Object;");
    clinit.ret();
    app->define(cb.build());
  }
  {
    ClassBuilder cb("th/Waiter");
    cb.addInterface("java/lang/Runnable");
    auto& run = cb.method("run", "()V");
    Label from = run.newLabel(), to = run.newLabel(), handler = run.newLabel();
    Label loop = run.newLabel(), got = run.newLabel();
    run.getstatic("th/Box", "lock", "Ljava/lang/Object;").astore(1);
    run.aload(1).monitorenter();
    run.bind(from);
    run.bind(loop);
    run.getstatic("th/Box", "value", "I").ifne(got);
    run.aload(1).invokevirtual("java/lang/Object", "wait", "()V");
    run.gotoLabel(loop);
    run.bind(got);
    run.getstatic("th/Box", "value", "I").iconst(100).iadd();
    run.putstatic("th/Box", "value", "I");
    run.bind(to);
    run.aload(1).monitorexit();
    run.ret();
    run.bind(handler).pop().aload(1).monitorexit().ret();
    run.handler(from, to, handler, "java/lang/InterruptedException");
    app->define(cb.build());
  }
  {
    ClassBuilder cb("th/Main3");
    auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
    m.newObject("java/lang/Thread").dup();
    m.newDefault("th/Waiter");
    m.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
    m.astore(0);
    m.aload(0).invokevirtual("java/lang/Thread", "start", "()V");
    m.lconst(50).invokestatic("java/lang/Thread", "sleep", "(J)V");
    // producer: set value, notify
    m.getstatic("th/Box", "lock", "Ljava/lang/Object;").astore(1);
    m.aload(1).monitorenter();
    m.iconst(7).putstatic("th/Box", "value", "I");
    m.aload(1).invokevirtual("java/lang/Object", "notifyAll", "()V");
    m.aload(1).monitorexit();
    m.aload(0).invokevirtual("java/lang/Thread", "join", "()V");
    m.getstatic("th/Box", "value", "I").ireturn();
    app->define(cb.build());
  }
  Value r = call("th/Main3", "f", "()I", {});
  EXPECT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), 107);  // 7 set by producer + 100 added by waiter
}

TEST_F(ThreadFixture, WaitWithoutMonitorThrows) {
  ClassBuilder cb("th/BadWait");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
  m.bind(from);
  m.newDefault("java/lang/Object");
  m.invokevirtual("java/lang/Object", "wait", "()V");
  m.bind(to).iconst(0).ireturn();
  m.bind(handler).pop().iconst(1).ireturn();
  m.handler(from, to, handler, "java/lang/IllegalMonitorStateException");
  app->define(cb.build());
  Value r = call("th/BadWait", "f", "()I", {});
  EXPECT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), 1);
}

TEST_F(ThreadFixture, CurrentThreadIsStable) {
  ClassBuilder cb("th/Cur");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  Label same = m.newLabel();
  m.invokestatic("java/lang/Thread", "currentThread", "()Ljava/lang/Thread;");
  m.invokestatic("java/lang/Thread", "currentThread", "()Ljava/lang/Thread;");
  m.ifAcmpEq(same);
  m.iconst(0).ireturn();
  m.bind(same).iconst(1).ireturn();
  app->define(cb.build());
  Value r = call("th/Cur", "f", "()I", {});
  EXPECT_EQ(r.asInt(), 1);
}

TEST_F(ThreadFixture, SleepingThreadCountedInCurrentIsolate) {
  {
    ClassBuilder cb("th/Napper");
    cb.addInterface("java/lang/Runnable");
    auto& run = cb.method("run", "()V");
    Label from = run.newLabel(), to = run.newLabel(), handler = run.newLabel();
    run.bind(from);
    run.lconst(600000).invokestatic("java/lang/Thread", "sleep", "(J)V");
    run.bind(to).ret();
    run.bind(handler).pop().ret();
    run.handler(from, to, handler, "java/lang/InterruptedException");
    app->define(cb.build());
  }
  {
    ClassBuilder cb("th/Main4");
    auto& m = cb.method("f", "()Ljava/lang/Thread;", ACC_PUBLIC | ACC_STATIC);
    m.newObject("java/lang/Thread").dup();
    m.newDefault("th/Napper");
    m.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
    m.dup().invokevirtual("java/lang/Thread", "start", "()V");
    m.areturn();
    app->define(cb.build());
  }
  Value th = call("th/Main4", "f", "()Ljava/lang/Thread;", {});
  ASSERT_TRUE(last_error.empty()) << last_error;
  // A7 detection input: the sleeping thread shows up in the isolate stats.
  for (int i = 0; i < 2000 && iso->stats.sleeping_threads.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(iso->stats.sleeping_threads.load(), 1);
  // Interrupt via the guest API and confirm it unparks.
  JThread* t = vm->mainThread();
  vm->callVirtual(t, th.asRef(), "interrupt", "()V", {});
  vm->callVirtual(t, th.asRef(), "join", "()V", {});
  EXPECT_EQ(iso->stats.sleeping_threads.load(), 0);
}

}  // namespace
}  // namespace ijvm
