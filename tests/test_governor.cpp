// ResourceGovernor: automatic DoS detection (paper section 4.4 extension).
//
// The paper's administrator reads the per-isolate counters and kills the
// offender by hand; the governor automates the decision. These tests drive
// tick() deterministically against live attack bundles and assert that
// (a) each DoS class is detected and the offender killed, (b) well-behaved
// bundles and Isolate0 are never judged, and (c) hysteresis and warmup
// behave as specified.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "admin/governor.h"
#include "osgi/framework.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

namespace ijvm {
namespace {

using namespace std::chrono;

struct GovernorPlatform {
  GovernorPlatform() {
    VmOptions opts = VmOptions::isolated();
    opts.gc_threshold = 512u << 10;
    opts.heap_limit = 64u << 20;
    opts.host_thread_cap = 48;
    opts.sampler_period_us = 500;
    vm = std::make_unique<VM>(opts);
    installSystemLibrary(*vm);
    FrameworkOptions fopts;
    fopts.activator_timeout_ms = 1000;
    fw = std::make_unique<Framework>(*vm, fopts);
  }
  ~GovernorPlatform() {
    vm->shutdownAllThreads();
    fw.reset();
    vm.reset();
  }

  Bundle* installAndStart(BundleDescriptor desc) {
    Bundle* b = fw->install(std::move(desc));
    fw->start(b);
    return b;
  }

  // Ticks the governor every `period_ms` until it has killed `bundle` or
  // the deadline passes. Returns true if killed.
  bool tickUntilKilled(ResourceGovernor& gov, Bundle* bundle, i64 deadline_ms,
                       i64 period_ms = 50) {
    auto deadline = steady_clock::now() + milliseconds(deadline_ms);
    while (steady_clock::now() < deadline) {
      gov.tick();
      for (i32 id : gov.killed()) {
        if (id == bundle->id()) return true;
      }
      std::this_thread::sleep_for(milliseconds(period_ms));
    }
    return false;
  }

  std::unique_ptr<VM> vm;
  std::unique_ptr<Framework> fw;
};

TEST(GovernorTest, KillsCpuHog) {
  GovernorPlatform p;
  Bundle* good = p.installAndStart(makeWellBehavedBundle("good"));
  Bundle* hog = p.installAndStart(makeCpuHogBundle("cpuhog"));

  GovernorPolicy policy = GovernorPolicy::standard();
  ResourceGovernor gov(*p.fw, policy);
  ASSERT_TRUE(p.tickUntilKilled(gov, hog, 10000));

  // The spinner thread must actually unwind after the kill.
  auto deadline = steady_clock::now() + seconds(5);
  while (hog->isolate()->stats.live_threads.load() != 0 &&
         steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  EXPECT_EQ(hog->isolate()->stats.live_threads.load(), 0);
  EXPECT_EQ(hog->state(), BundleState::Uninstalled);
  EXPECT_EQ(good->state(), BundleState::Active);

  // The kill event names the CPU rule.
  bool cpu_kill = false;
  for (const GovernorEvent& ev : gov.history()) {
    if (ev.bundle_id == hog->id() && ev.acted &&
        ev.action == GovernorAction::Kill && ev.signal == Signal::CpuShare) {
      cpu_kill = true;
    }
  }
  EXPECT_TRUE(cpu_kill);
}

TEST(GovernorTest, KillsMemoryHog) {
  GovernorPlatform p;
  Bundle* good = p.installAndStart(makeWellBehavedBundle("good"));
  // ~12 MiB retention, grabbed over ~2s -- the 4 MiB default budget trips
  // mid-flight.
  Bundle* hog = p.installAndStart(makeMemoryHogBundle("memhog", 16384, 96));

  GovernorPolicy policy = GovernorPolicy::standard(/*memory_budget_bytes=*/2u << 20);
  policy.gc_if_allocated_bytes = 256u << 10;
  ResourceGovernor gov(*p.fw, policy);
  ASSERT_TRUE(p.tickUntilKilled(gov, hog, 15000));
  EXPECT_EQ(hog->state(), BundleState::Uninstalled);
  EXPECT_EQ(good->state(), BundleState::Active);

  // After the kill + GC the hog's retention is reclaimed.
  p.vm->collectGarbage(nullptr, nullptr);
  EXPECT_LT(p.vm->reportFor(hog->isolate()).bytes_charged, 1u << 20);
}

TEST(GovernorTest, KillsThreadBomb) {
  GovernorPlatform p;
  Bundle* bomb = p.installAndStart(makeThreadBombBundle("bomb", 12));

  GovernorPolicy policy = GovernorPolicy::standard(4u << 20, /*thread_budget=*/6);
  ResourceGovernor gov(*p.fw, policy);
  ASSERT_TRUE(p.tickUntilKilled(gov, bomb, 10000));

  auto deadline = steady_clock::now() + seconds(5);
  while (bomb->isolate()->stats.live_threads.load() != 0 &&
         steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  EXPECT_EQ(bomb->isolate()->stats.live_threads.load(), 0);
}

TEST(GovernorTest, KillsAllocChurner) {
  GovernorPlatform p;
  Bundle* churn = p.installAndStart(makeChurnBundle("churn"));

  GovernorPolicy policy = GovernorPolicy::standard();
  ResourceGovernor gov(*p.fw, policy);
  ASSERT_TRUE(p.tickUntilKilled(gov, churn, 10000));

  // History contains A4 GC warnings and/or the alloc-rate kill.
  bool alloc_hit = false;
  for (const GovernorEvent& ev : gov.history()) {
    if (ev.bundle_id == churn->id() &&
        (ev.signal == Signal::AllocRate || ev.signal == Signal::GcRate)) {
      alloc_hit = true;
    }
  }
  EXPECT_TRUE(alloc_hit);
}

TEST(GovernorTest, KillsHangingService) {
  GovernorPlatform p;
  defineCounterApi(*p.fw);
  Bundle* hang = p.installAndStart(makeHangServiceBundle("hang", "svc"));
  Bundle* client = p.installAndStart(makeCounterClient("client", "svc"));

  // The client calls inc() and hangs inside the hang bundle.
  std::atomic<bool> returned{false};
  std::atomic<i32> value{0};
  JThread* ct = p.vm->attachThread("caller", p.fw->frameworkIsolate());
  std::thread caller([&] {
    Value r = p.vm->callStaticIn(ct, client->loader(),
                                 bundlePkg("client") + "/Client",
                                 "callGuarded", "()I", {});
    value.store(r.kind == Kind::Int ? r.asInt() : -2);
    returned.store(true);
    p.vm->detachThread(ct);
  });

  GovernorPolicy policy = GovernorPolicy::standard();
  ResourceGovernor gov(*p.fw, policy);
  EXPECT_TRUE(p.tickUntilKilled(gov, hang, 10000));

  // Control returns to the caller; callGuarded catches the
  // StoppedIsolateException and returns -1.
  auto deadline = steady_clock::now() + seconds(5);
  while (!returned.load() && steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  EXPECT_TRUE(returned.load());
  EXPECT_EQ(value.load(), -1);
  caller.join();
}

TEST(GovernorTest, SparesWellBehavedBundles) {
  GovernorPlatform p;
  Bundle* a = p.installAndStart(makeWellBehavedBundle("good.a"));
  Bundle* b = p.installAndStart(makeWellBehavedBundle("good.b"));

  ResourceGovernor gov(*p.fw, GovernorPolicy::standard());
  for (int i = 0; i < 20; i++) {
    gov.tick();
    std::this_thread::sleep_for(milliseconds(25));
  }
  EXPECT_TRUE(gov.killed().empty());
  EXPECT_EQ(a->state(), BundleState::Active);
  EXPECT_EQ(b->state(), BundleState::Active);
  for (const GovernorEvent& ev : gov.history()) {
    EXPECT_FALSE(ev.acted && ev.action == GovernorAction::Kill)
        << ev.bundle_name << " " << ev.rule_label;
  }
}

TEST(GovernorTest, NeverJudgesIsolate0) {
  GovernorPlatform p;
  // A policy that any isolate doing anything would trip.
  GovernorPolicy policy;
  policy.rules.push_back({Signal::AllocRate, -1.0, 1, GovernorAction::Kill, "any"});
  policy.warmup_ticks = 0;
  ResourceGovernor gov(*p.fw, policy);
  gov.tick();
  gov.tick();
  for (const GovernorEvent& ev : gov.history()) {
    EXPECT_NE(ev.bundle_id, 0);
    EXPECT_NE(ev.bundle_name, "framework");
  }
  // Isolate0 is alive and privileged.
  EXPECT_TRUE(p.fw->frameworkIsolate()->isActive());
}

TEST(GovernorTest, HysteresisRequiresConsecutiveStrikes) {
  GovernorPlatform p;
  Bundle* good = p.installAndStart(makeWellBehavedBundle("bursty"));

  // One-tick spikes must not kill with strikes_to_act = 3; the well-behaved
  // bundle alternates work and sleep, so AllocRate > 0 only on some ticks.
  GovernorPolicy policy;
  policy.rules.push_back({Signal::AllocRate, 0.5, 3, GovernorAction::Kill, "alloc3"});
  policy.warmup_ticks = 0;
  ResourceGovernor gov(*p.fw, policy);

  // Tick with long gaps: each tick sees at most a couple of allocations,
  // and sleep-only intervals reset the strike counter.
  bool killed = false;
  for (int i = 0; i < 10 && !killed; i++) {
    gov.tick();
    killed = !gov.killed().empty();
    std::this_thread::sleep_for(milliseconds(120));
  }
  // Strike-3 kills are *possible* if the bundle allocated in 3 consecutive
  // windows; what hysteresis guarantees is no kill before 3 strikes.
  for (const GovernorEvent& ev : gov.history()) {
    if (ev.acted && ev.action == GovernorAction::Kill) {
      EXPECT_GE(ev.strikes, 3);
    }
  }
  (void)good;
}

TEST(GovernorTest, WarmupSuppressesStartupSpikes) {
  GovernorPlatform p;
  GovernorPolicy policy;
  policy.rules.push_back({Signal::AllocRate, 0.5, 1, GovernorAction::Kill, "alloc1"});
  policy.warmup_ticks = 5;
  ResourceGovernor gov(*p.fw, policy);

  // Installing + starting a bundle allocates (activator, thread, context).
  Bundle* b = p.installAndStart(makeWellBehavedBundle("newcomer"));
  for (int i = 0; i < 5; i++) gov.tick();
  // Within warmup: no events for the newcomer at all.
  for (const GovernorEvent& ev : gov.history()) {
    EXPECT_NE(ev.bundle_id, b->id());
  }
}

TEST(GovernorTest, WarnRuleRecordsButDoesNotKill) {
  GovernorPlatform p;
  Bundle* churn = p.installAndStart(makeChurnBundle("churn"));

  GovernorPolicy policy;
  policy.rules.push_back({Signal::AllocRate, 10.0, 1, GovernorAction::Warn, "warn-only"});
  policy.warmup_ticks = 0;
  ResourceGovernor gov(*p.fw, policy);
  for (int i = 0; i < 6; i++) {
    gov.tick();
    std::this_thread::sleep_for(milliseconds(50));
  }
  EXPECT_TRUE(gov.killed().empty());
  bool warned = false;
  for (const GovernorEvent& ev : gov.history()) {
    if (ev.bundle_id == churn->id() && ev.action == GovernorAction::Warn &&
        ev.acted) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
  EXPECT_NE(churn->state(), BundleState::Uninstalled);
}

TEST(GovernorTest, BackgroundWatcherKillsHog) {
  GovernorPlatform p;
  Bundle* hog = p.installAndStart(makeCpuHogBundle("cpuhog"));

  ResourceGovernor gov(*p.fw, GovernorPolicy::standard());
  std::atomic<bool> callback_fired{false};
  gov.onKill([&](const GovernorEvent& ev) {
    EXPECT_EQ(ev.bundle_name, "cpuhog");
    callback_fired.store(true);
  });
  gov.start(50);
  auto deadline = steady_clock::now() + seconds(10);
  while (!callback_fired.load() && steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(20));
  }
  gov.stop();
  EXPECT_TRUE(callback_fired.load());
  EXPECT_EQ(hog->state(), BundleState::Uninstalled);
  EXPECT_GT(gov.ticks(), 0u);
}

TEST(GovernorTest, KilledBundleReportedOnce) {
  GovernorPlatform p;
  Bundle* hog = p.installAndStart(makeCpuHogBundle("cpuhog"));
  ResourceGovernor gov(*p.fw, GovernorPolicy::standard());
  ASSERT_TRUE(p.tickUntilKilled(gov, hog, 10000));
  // Extra ticks must not re-kill or re-record the dead bundle.
  for (int i = 0; i < 5; i++) gov.tick();
  int kills = 0;
  for (i32 id : gov.killed()) {
    if (id == hog->id()) kills++;
  }
  EXPECT_EQ(kills, 1);
}

TEST(GovernorTest, StandardPolicyCoversFiveDosSignals) {
  GovernorPolicy p = GovernorPolicy::standard();
  bool mem = false, gc = false, threads = false, cpu = false, hang = false;
  for (const GovernorRule& r : p.rules) {
    mem |= r.signal == Signal::RetainedEstimate;
    gc |= r.signal == Signal::GcRate || r.signal == Signal::AllocRate;
    threads |= r.signal == Signal::LiveThreads;
    cpu |= r.signal == Signal::CpuShare;
    hang |= r.signal == Signal::HungCallers;
  }
  EXPECT_TRUE(mem && gc && threads && cpu && hang);
}

TEST(GovernorTest, StandardPolicyPairsJitChurnWithDemote) {
  GovernorPolicy p = GovernorPolicy::standard();
  bool found = false;
  for (const GovernorRule& r : p.rules) {
    if (r.signal != Signal::JitChurnRate) continue;
    found = true;
    // Churn means the method keeps re-heating: the remedy is DemoteJit's
    // raised re-heat floor, never a kill (hot is not hostile).
    EXPECT_EQ(r.action, GovernorAction::DemoteJit);
    EXPECT_GE(r.strikes_to_act, 2);
  }
  EXPECT_TRUE(found);
}

// JitChurnRate is a pure counter-delta signal, so the test drives it
// deterministically: bump the bundle's compile/demote counters between
// ticks (exactly what installJitCode/demoteCompiled do) instead of racing
// a real compile-demote cycle against the tick clock.
TEST(GovernorTest, JitChurnRuleFiresAndDemotes) {
  GovernorPlatform p;
  Bundle* busy = p.installAndStart(makeWellBehavedBundle("busy"));

  GovernorPolicy policy;
  policy.rules.push_back(
      {Signal::JitChurnRate, 3.0, 2, GovernorAction::DemoteJit, "thrash"});
  policy.warmup_ticks = 0;
  ResourceGovernor gov(*p.fw, policy);
  gov.tick();  // baseline snapshot: no deltas yet

  ResourceStats& stats = busy->isolate()->stats;
  auto churn = [&stats](u64 compiles, u64 demotes) {
    stats.jit_methods_compiled.fetch_add(compiles);
    stats.jit_methods_demoted.fetch_add(demotes);
  };

  churn(3, 3);  // delta 6 > 3: strike 1
  std::vector<GovernorEvent> ev1 = gov.tick();
  ASSERT_EQ(ev1.size(), 1u);
  EXPECT_EQ(ev1[0].bundle_id, busy->id());
  EXPECT_EQ(ev1[0].signal, Signal::JitChurnRate);
  EXPECT_DOUBLE_EQ(ev1[0].observed, 6.0);
  EXPECT_FALSE(ev1[0].acted);

  churn(2, 2);  // strike 2: the rule acts
  std::vector<GovernorEvent> ev2 = gov.tick();
  ASSERT_EQ(ev2.size(), 1u);
  EXPECT_TRUE(ev2[0].acted);
  EXPECT_EQ(ev2[0].action, GovernorAction::DemoteJit);
  // DemoteJit never kills: the bundle is still running.
  EXPECT_EQ(busy->state(), BundleState::Active);
  EXPECT_TRUE(gov.killed().empty());

  // A quiet tick resets the strikes (hysteresis), and the churn shows up
  // in the admin snapshot's per-bundle table.
  std::vector<GovernorEvent> ev3 = gov.tick();
  EXPECT_TRUE(ev3.empty());
  std::string snap = gov.adminSnapshot();
  EXPECT_NE(snap.find("jit-churn"), std::string::npos);
  EXPECT_NE(snap.find("busy"), std::string::npos);
}

}  // namespace
}  // namespace ijvm
