// Safepoint-aware sampling profiler (src/obs/profiler.h) and the metrics
// endpoint (src/obs/metrics.h). Covered here:
//   * deterministic CPU attribution: manual ticks driven from guest
//     natives at a 3:1 ratio across two isolates land within 10% of a
//     75/25 split, in the cumulative counters, the windowed share, the
//     per-isolate ResourceStats counter and the platform report;
//   * folded-stack export: exact flamegraph.pl lines for a known call
//     chain under the classic interpreter (deterministic @classic tags);
//   * Prometheus exposition: well-formed HELP/TYPE framing, the standard
//     VM families (donation counters included) and label escaping;
//   * the admin socket: ping/metrics/profile verbs with the "."-line
//     response terminator, on an ephemeral localhost port;
//   * ring wrap keeps the newest samples; reset() forgets them;
//   * host-activity slots (the GC/compiler bracket) attribute samples
//     without guest frames;
//   * the -DIJVM_DISABLE_PROFILER build keeps every entry point callable
//     as a no-op.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bytecode/builder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"

namespace ijvm {
namespace {

#ifdef IJVM_DISABLE_PROFILER
#define IJVM_REQUIRE_PROFILER() \
  GTEST_SKIP() << "built with IJVM_DISABLE_PROFILER"
#else
#define IJVM_REQUIRE_PROFILER() (void)0
#endif

// Deterministic profiler options: no sampler thread (ticks are driven
// manually from guest natives), no wall-clock sampler noise.
VmOptions profOptions() {
  VmOptions opts = VmOptions::isolated();
  opts.profile_hz = 0;
  opts.sampler_period_us = 0;
  return opts;
}

// Two-isolate fixture: each isolate gets its own copy of a class whose
// "work" method spins a guest loop that calls the `tick` native once per
// iteration. Every tick requests a self-sample that the spinning thread
// honors at the loop's back-edge poll, so samples-per-isolate equals
// ticks-per-isolate exactly -- scheduling cannot skew the split.
struct ProfVm {
  explicit ProfVm(VmOptions opts = profOptions()) : vm(opts) {
    installSystemLibrary(vm);
  }

  ClassLoader* boot(const std::string& name) {
    ClassLoader* loader = vm.registry().newLoader(name);
    ClassBuilder cb("p/Work");
    cb.nativeMethod("tick", "()V", ACC_STATIC);
    auto& m = cb.method("work", "(I)V", ACC_PUBLIC | ACC_STATIC);
    Label head = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(1);
    m.bind(head).iload(1).iload(0).ifIcmpGe(done);
    m.invokestatic("p/Work", "tick", "()V");
    m.iinc(1, 1).gotoLabel(head);
    m.bind(done).ret();
    loader->define(cb.build());
    vm.createIsolate(loader, name);
    JMethod* tick = vm.registry().resolve(loader, "p/Work")
                        ->findMethod("tick", "()V");
    tick->native = [](NativeCtx& ctx) -> Value {
      ctx.vm.profiler()->tickOnce();
      return {};
    };
    return loader;
  }

  void work(ClassLoader* loader, i32 n) {
    vm.callStaticIn(vm.mainThread(), loader, "p/Work", "work", "(I)V",
                    {Value::ofInt(n)});
    ASSERT_EQ(vm.mainThread()->pending_exception, nullptr)
        << vm.pendingMessage(vm.mainThread());
  }

  VM vm;
};

TEST(Profiler, DeterministicThreeToOneAttribution) {
  IJVM_REQUIRE_PROFILER();
  ProfVm f;
  ClassLoader* a = f.boot("appA");
  ClassLoader* b = f.boot("appB");

  // Interleave 3:1 so every kWindowTicks-aligned window holds the same
  // mix: 25 rounds of (3 ticks in A, 1 tick in B) = 100 ticks total,
  // 128 = 4 * kWindowTicks would also work but 100 leaves the last
  // window open, exercising the closed-window readback path.
  for (int round = 0; round < 25; ++round) {
    f.work(a, 3);
    f.work(b, 1);
  }

  obs::Profiler* prof = f.vm.profiler();
  ASSERT_NE(prof, nullptr);
  const u64 total = prof->totalSamples();
  EXPECT_GE(total, 95u);
  EXPECT_LE(total, 100u);

  Isolate* ia = f.vm.isolateById(0);
  Isolate* ib = f.vm.isolateById(1);
  ASSERT_NE(ia, nullptr);
  ASSERT_NE(ib, nullptr);

  // Cumulative split within 10% of 75/25.
  const double share_a =
      static_cast<double>(prof->isolateSamples(ia->id)) /
      static_cast<double>(total);
  const double share_b =
      static_cast<double>(prof->isolateSamples(ib->id)) /
      static_cast<double>(total);
  EXPECT_NEAR(share_a, 0.75, 0.10);
  EXPECT_NEAR(share_b, 0.25, 0.10);

  // Windowed share (the governor's series): the 3:1 pattern repeats
  // every 4 ticks, so every closed 32-tick window holds the same mix.
  EXPECT_NEAR(prof->cpuShare(ia->id), 0.75, 0.10);
  EXPECT_NEAR(prof->cpuShare(ib->id), 0.25, 0.10);

  // Per-isolate ResourceStats counter and the IsolateReport plumbing.
  EXPECT_EQ(ia->stats.cpu_profile_samples.load(), prof->isolateSamples(0));
  EXPECT_EQ(f.vm.reportFor(ia).cpu_profile_samples,
            ia->stats.cpu_profile_samples.load());

  // The attribution section names both isolates and their samples.
  const std::string report = obs::platformReport(f.vm);
  EXPECT_NE(report.find("cpu attribution"), std::string::npos) << report;
  EXPECT_NE(report.find("appA"), std::string::npos) << report;
  EXPECT_NE(report.find("appB"), std::string::npos) << report;
  EXPECT_NE(report.find("p/Work.work(I)V"), std::string::npos) << report;
}

TEST(Profiler, FoldedStacksGoldenUnderClassicInterpreter) {
  IJVM_REQUIRE_PROFILER();
  VmOptions opts = profOptions();
  opts.exec_engine = ExecEngine::Classic;  // deterministic @classic tags
  ProfVm f(opts);
  f.vm.profiler()->setEnabled(true);

  ClassLoader* loader = f.vm.registry().newLoader("gold");
  ClassBuilder cb("g/T");
  cb.nativeMethod("tick", "()V", ACC_STATIC);
  auto& inner = cb.method("inner", "(I)V", ACC_PUBLIC | ACC_STATIC);
  Label head = inner.newLabel(), done = inner.newLabel();
  inner.iconst(0).istore(1);
  inner.bind(head).iload(1).iload(0).ifIcmpGe(done);
  inner.invokestatic("g/T", "tick", "()V");
  inner.iinc(1, 1).gotoLabel(head);
  inner.bind(done).ret();
  auto& outer = cb.method("outer", "(I)V", ACC_PUBLIC | ACC_STATIC);
  outer.iload(0).invokestatic("g/T", "inner", "(I)V").ret();
  loader->define(cb.build());
  f.vm.createIsolate(loader, "gold");
  f.vm.registry().resolve(loader, "g/T")->findMethod("tick", "()V")->native =
      [](NativeCtx& ctx) -> Value {
        ctx.vm.profiler()->tickOnce();
        return {};
      };

  f.vm.callStaticIn(f.vm.mainThread(), loader, "g/T", "outer", "(I)V",
                    {Value::ofInt(7)});
  ASSERT_EQ(f.vm.mainThread()->pending_exception, nullptr)
      << f.vm.pendingMessage(f.vm.mainThread());

  // Every sample has the same two-frame stack, so the export is exactly
  // one line, lexicographically stable, flamegraph.pl-ready.
  const std::string folded = f.vm.profiler()->dumpFoldedStacks();
  EXPECT_EQ(folded,
            "gold;mutator;g/T.outer(I)V@classic;g/T.inner(I)V@classic 7\n");
}

TEST(Profiler, RingWrapKeepsNewestAndResetForgets) {
  IJVM_REQUIRE_PROFILER();
  ProfVm f;
  obs::Profiler* prof = f.vm.profiler();
  prof->setRingCapacity(4);  // rings are created lazily at first publish
  ClassLoader* loader = f.boot("wrap");
  f.work(loader, 10);

  EXPECT_EQ(prof->totalSamples(), 10u);
  std::vector<obs::ProfileSample> samples = prof->snapshot();
  ASSERT_EQ(samples.size(), 4u);  // wrap kept only the newest slots
  // Newest-kept, oldest-dropped: timestamps are monotonic per ring.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].ts_ns, samples[i - 1].ts_ns);
  }
  for (const obs::ProfileSample& p : samples) {
    EXPECT_EQ(p.kind, obs::SampleThreadKind::Mutator);
    ASSERT_FALSE(p.name_ids.empty());
    EXPECT_EQ(obs::profileNameOf(p.name_ids.back()), "p/Work.work(I)V");
  }

  prof->reset();
  EXPECT_EQ(prof->totalSamples(), 0u);
  EXPECT_TRUE(prof->snapshot().empty());
  EXPECT_EQ(prof->dumpFoldedStacks(), "");
  // The thread re-acquires a fresh ring after reset and sampling resumes.
  f.work(loader, 3);
  EXPECT_EQ(prof->totalSamples(), 3u);
}

TEST(Profiler, ActivitySlotsAttributeHostThreads) {
  IJVM_REQUIRE_PROFILER();
  ProfVm f;
  obs::Profiler* prof = f.vm.profiler();
  {
    obs::ProfileActivityScope gc(f.vm, obs::SampleThreadKind::Gc, -1,
                                 "gc.collect");
    prof->tickOnce();
    prof->tickOnce();
  }
  prof->tickOnce();  // scope closed: no further gc samples

  u64 gc_samples = 0;
  for (const obs::ProfileSample& p : prof->snapshot()) {
    if (p.kind != obs::SampleThreadKind::Gc) continue;
    ++gc_samples;
    EXPECT_EQ(p.isolate, -1);
    ASSERT_EQ(p.name_ids.size(), 1u);
    EXPECT_EQ(obs::profileNameOf(p.name_ids[0]), "gc.collect");
  }
  EXPECT_EQ(gc_samples, 2u);
  const std::string folded = prof->dumpFoldedStacks();
  EXPECT_NE(folded.find("platform;gc;gc.collect 2"), std::string::npos)
      << folded;
}

TEST(Profiler, DisabledGateDropsSamplesButAcksRequests) {
  IJVM_REQUIRE_PROFILER();
  ProfVm f;
  obs::Profiler* prof = f.vm.profiler();
  prof->setEnabled(false);
  ClassLoader* loader = f.boot("off");
  f.work(loader, 5);  // natives still call tickOnce; the gate drops it all
  EXPECT_EQ(prof->totalSamples(), 0u);
  // The guest thread is not stuck with a dangling request either.
  JThread* t = f.vm.mainThread();
  EXPECT_EQ(t->profile_requests.load(), t->profile_taken.load());

  prof->setEnabled(true);
  f.work(loader, 5);
  EXPECT_EQ(prof->totalSamples(), 5u);
}

TEST(Profiler, WindowRollEmitsChromeCounterTracks) {
  IJVM_REQUIRE_PROFILER();
#ifdef IJVM_DISABLE_TRACE
  GTEST_SKIP() << "built with IJVM_DISABLE_TRACE";
#else
  ProfVm f;
  ClassLoader* loader = f.boot("tracks");
  obs::resetTrace();
  obs::setTraceEnabled(true);
  // kWindowTicks ticks close exactly one CPU-share window, whose roll
  // emits one counter event per sampled isolate plus the queue-depth and
  // cumulative-sample tracks (rendered "ph":"C" in the Chrome trace).
  f.work(loader, static_cast<i32>(obs::Profiler::kWindowTicks));
  obs::setTraceEnabled(false);

  const std::string path = "/tmp/ijvm_profiler_counters.json";
  ASSERT_TRUE(obs::dumpChromeTrace(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos) << json;
  EXPECT_NE(json.find("cpu.share.tracks"), std::string::npos) << json;
  EXPECT_NE(json.find("compile.queue.depth"), std::string::npos) << json;
  EXPECT_NE(json.find("profiler.samples"), std::string::npos) << json;
  obs::resetTrace();
#endif
}

TEST(Metrics, PrometheusExpositionCarriesVmFamilies) {
  ProfVm f;
  ClassLoader* loader = nullptr;
#ifndef IJVM_DISABLE_PROFILER
  loader = f.boot("metr\"ics");  // exercises label escaping
  f.work(loader, 8);
#else
  (void)loader;
#endif

  obs::MetricsRegistry reg;
  obs::registerVmMetrics(&reg, f.vm);
  const std::string text = reg.renderPrometheus();

  // HELP/TYPE framing for every family, counters suffixed _total.
  EXPECT_NE(text.find("# HELP ijvm_isolate_bytes_charged "),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ijvm_isolate_bytes_charged gauge"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE ijvm_isolate_cpu_profile_samples_total counter"),
      std::string::npos);
  // PR-8 donation counters are scrapeable.
  EXPECT_NE(text.find("ijvm_isolate_donated_bytes_in_total"),
            std::string::npos);
  EXPECT_NE(text.find("ijvm_isolate_donated_bytes_out_total"),
            std::string::npos);
  EXPECT_NE(text.find("ijvm_isolate_donated_bytes_delta"), std::string::npos);
  EXPECT_NE(text.find("ijvm_profiler_samples_total"), std::string::npos);
  EXPECT_NE(text.find("ijvm_compile_queue_depth"), std::string::npos);

#ifndef IJVM_DISABLE_PROFILER
  // The quoted isolate name is escaped, and its profile samples surface.
  EXPECT_NE(text.find("isolate=\"metr\\\"ics\""), std::string::npos) << text;
  EXPECT_NE(text.find("ijvm_profiler_samples_total 8"), std::string::npos)
      << text;
#endif
}

TEST(Metrics, CustomFamilyRendersInRegistrationOrder) {
  obs::MetricsRegistry reg;
  reg.add("ijvm_test_alpha", "first family", obs::MetricType::Counter,
          [](std::vector<obs::MetricSample>* out) {
            out->push_back(obs::MetricSample{"", 3.0});
          });
  reg.add("ijvm_test_beta", "second family", obs::MetricType::Gauge,
          [](std::vector<obs::MetricSample>* out) {
            out->push_back(obs::MetricSample{"shard=\"a\"", 0.5});
            out->push_back(obs::MetricSample{"shard=\"b\"", 0.25});
          });
  EXPECT_EQ(reg.renderPrometheus(),
            "# HELP ijvm_test_alpha first family\n"
            "# TYPE ijvm_test_alpha counter\n"
            "ijvm_test_alpha 3\n"
            "# HELP ijvm_test_beta second family\n"
            "# TYPE ijvm_test_beta gauge\n"
            "ijvm_test_beta{shard=\"a\"} 0.5\n"
            "ijvm_test_beta{shard=\"b\"} 0.25\n");
}

// Minimal in-test client for the admin socket: send one verb, collect
// lines until the "." terminator (the ijvm_admin tool speaks the same
// protocol).
std::string adminRequest(u16 port, const std::string& verb, bool* ok) {
  *ok = false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = verb + "\n";
  if (::send(fd, req.data(), req.size(), 0) !=
      static_cast<ssize_t>(req.size())) {
    ::close(fd);
    return {};
  }
  std::string buf;
  char chunk[4096];
  for (;;) {
    const size_t end = buf.find("\n.\n");
    if (end != std::string::npos || buf.rfind(".\n", 0) == 0) {
      *ok = true;
      buf.erase(end == std::string::npos ? 0 : end + 1);
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return buf;
}

TEST(Metrics, AdminSocketServesPingMetricsAndProfile) {
  ProfVm f;
#ifndef IJVM_DISABLE_PROFILER
  ClassLoader* loader = f.boot("admin");
  f.work(loader, 4);
#endif

  obs::AdminServer server(f.vm, 0);  // ephemeral localhost port
  ASSERT_TRUE(server.ok());
  ASSERT_NE(server.port(), 0);

  bool ok = false;
  EXPECT_EQ(adminRequest(server.port(), "ping", &ok), "pong\n");
  EXPECT_TRUE(ok);

  const std::string metrics = adminRequest(server.port(), "metrics", &ok);
  EXPECT_TRUE(ok);
  EXPECT_NE(metrics.find("# HELP ijvm_isolate_bytes_charged"),
            std::string::npos);

  const std::string profile = adminRequest(server.port(), "profile", &ok);
  EXPECT_TRUE(ok);
#ifndef IJVM_DISABLE_PROFILER
  EXPECT_NE(profile.find("admin;mutator;p/Work.work(I)V"), std::string::npos)
      << profile;
#endif

  const std::string report = adminRequest(server.port(), "report", &ok);
  EXPECT_TRUE(ok);
  EXPECT_NE(report.find("I-JVM platform report"), std::string::npos);

  const std::string err = adminRequest(server.port(), "bogus", &ok);
  EXPECT_TRUE(ok);
  EXPECT_NE(err.find("unknown verb"), std::string::npos);
}

#ifdef IJVM_DISABLE_PROFILER
TEST(Profiler, DisabledBuildIsInert) {
  ProfVm f;
  obs::Profiler* prof = f.vm.profiler();
  ASSERT_NE(prof, nullptr);
  prof->start(97);
  prof->tickOnce();
  prof->setEnabled(true);
  EXPECT_FALSE(prof->enabled());
  EXPECT_EQ(prof->totalSamples(), 0u);
  EXPECT_TRUE(prof->snapshot().empty());
  EXPECT_EQ(prof->dumpFoldedStacks(), "");
  EXPECT_EQ(prof->attributionSection(), "");
  prof->stop();
  {
    obs::ProfileActivityScope act(f.vm, obs::SampleThreadKind::Gc, -1, "gc");
  }
  // The poll macro compiles to nothing; the report still renders.
  EXPECT_NE(obs::platformReport(f.vm).find("I-JVM platform report"),
            std::string::npos);
}
#endif

}  // namespace
}  // namespace ijvm
