// Differential test: the quickening engine (src/exec) must be observably
// equivalent to the classic interpreter -- identical results, identical
// thrown exceptions (at both the first, quickening, execution and the
// subsequent fast-path executions), identical per-isolate accounting
// charges, and identical attack outcomes. The fusion, JIT and OSR tiers
// are part of the contract: every workload runs with fusion forced off,
// fusion forced on, and the full ladder up to the call-threaded JIT
// forced on (all thresholds 0), and every variant must match the classic
// engine. On top of the fixed matrix, a randomized harness (seeded,
// reproducible) sweeps the 5-way tier space -- fusion on/off x jit on/off
// x osr on/off x thresholds in {1, default, huge} -- across the SPEC
// analogs and all eight attacks; the seed is printed on failure. The
// harness also sweeps a thread-count axis (mutator x compiler workers in
// {1, 2, 4}): with more than one mutator worker the workload runs as N
// concurrent bundle copies on the mutator pool, and every copy must still
// be observably identical, per isolate, to a serial classic run of the
// same shape. Build with -DIJVM_TEST_MUTATOR_THREADS=4 to pin the mutator
// axis for a CI matrix leg. Finally the harness sweeps the communication
// axes (comm_zero_copy on/off x channel_batch in {1, 8, 64}): every seeded
// config runs a two-isolate message workload through transferGraph and a
// writev-batched serialize/deserialize channel, and must be observably
// identical -- checksums and post-GC charges -- to the classic copy-only
// oracle (docs/comm.md).
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bytecode/builder.h"
#include "comm/serializer.h"
#include "exec/engine.h"
#include "exec/quickened.h"
#include "heap/object.h"
#include "runtime/mutator_pool.h"
#include "runtime/vm.h"
#include "stdlib/channels.h"
#include "stdlib/system_library.h"
#include "support/rng.h"
#include "support/strf.h"
#include "workloads/attacks.h"
#include "workloads/spec.h"

namespace ijvm {
namespace {

constexpr ExecEngine kEngines[] = {ExecEngine::Classic, ExecEngine::Quickened,
                                   ExecEngine::Jit};

const char* engineName(ExecEngine e) {
  switch (e) {
    case ExecEngine::Classic: return "classic";
    case ExecEngine::Quickened: return "quickened";
    case ExecEngine::Jit: return "jit";
  }
  return "?";
}

// Tier variants of the quickening engine under differential test: fusion
// forced off, fusion forced on, and the full ladder with the
// call-threaded JIT forced on (every threshold 0, so a method compiles at
// its second entry).
enum class Tier { FusionOff, FusionOn, JitOn };
constexpr Tier kTiers[] = {Tier::FusionOff, Tier::FusionOn, Tier::JitOn};

const char* tierName(Tier t) {
  switch (t) {
    case Tier::FusionOff: return "fusion-off";
    case Tier::FusionOn: return "fusion-on";
    case Tier::JitOn: return "jit-on";
  }
  return "?";
}

void applyTier(VmOptions& opts, Tier t) {
  opts.exec_engine =
      t == Tier::JitOn ? ExecEngine::Jit : ExecEngine::Quickened;
  opts.fusion = t != Tier::FusionOff;
  opts.fusion_threshold = 0;
  opts.jit_threshold = 0;
  // The fixed matrix pins deterministic tier transitions (compile at the
  // second entry); the randomized harness below sweeps the background
  // compiler and the code-cache budget on top.
  opts.background_compile = false;
}

// ---- spec workloads: checksums + per-isolate charges ----

struct SpecRun {
  i32 checksum = 0;
  u64 bytes_charged = 0;
  u64 objects_charged = 0;
  u64 objects_allocated = 0;
  u64 calls_in = 0;
};

SpecRun runSpecOpts(const SpecWorkload& wl, i32 size, const VmOptions& opts) {
  VM vm(opts);
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("spec");
  Isolate* iso = vm.createIsolate(app, "spec");
  SpecRun r;
  r.checksum = runSpecWorkload(vm, vm.mainThread(), app, wl, size);
  // Charges are reachability-based; compare them after a full collection.
  vm.collectGarbage(vm.mainThread(), nullptr);
  r.bytes_charged = iso->stats.bytes_charged.load();
  r.objects_charged = iso->stats.objects_charged.load();
  r.objects_allocated = iso->stats.objects_allocated.load();
  r.calls_in = iso->stats.calls_in.load();
  return r;
}

SpecRun runSpec(const SpecWorkload& wl, ExecEngine engine, i32 size,
                Tier tier = Tier::FusionOff) {
  VmOptions opts = VmOptions::isolated();
  opts.exec_engine = engine;
  if (engine != ExecEngine::Classic) applyTier(opts, tier);
  return runSpecOpts(wl, size, opts);
}

class SpecEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SpecEquivalence, EnginesAgreeOnChecksumAndCharges) {
  SpecWorkload wl = specWorkloads()[static_cast<size_t>(GetParam())];
  const i32 size = std::max(1, wl.default_size / 8);
  SpecRun classic = runSpec(wl, ExecEngine::Classic, size);
  // The quickening engine must match with fusion forced off, fusion
  // forced on, and the JIT forced on (thresholds 0: every method fuses as
  // soon as it quickens and compiles at its second entry).
  for (Tier tier : kTiers) {
    SCOPED_TRACE(tierName(tier));
    SpecRun quick = runSpec(wl, ExecEngine::Quickened, size, tier);
    EXPECT_EQ(classic.checksum, quick.checksum) << wl.name;
    EXPECT_EQ(classic.calls_in, quick.calls_in) << wl.name;
    // mtrt is two-threaded: totals identical, but thread interleaving makes
    // this the one workload where we do not pin allocation-order-dependent
    // counters; the reachability-based charges must still match.
    EXPECT_EQ(classic.bytes_charged, quick.bytes_charged) << wl.name;
    EXPECT_EQ(classic.objects_charged, quick.objects_charged) << wl.name;
    if (wl.name != "mtrt") {
      EXPECT_EQ(classic.objects_allocated, quick.objects_allocated) << wl.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SpecEquivalence, ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return specWorkloads()[static_cast<size_t>(info.param)]
                               .name;
                         });

// ---- exception behaviour, first (quickening) and repeat executions ----

struct EvalResult {
  i32 value = 0;
  std::string error;  // "" when no guest exception
};

// Runs `body` twice in one VM -- the first execution quickens, the second
// takes the rewritten fast path -- and asserts both report the same thing.
EvalResult evalTwice(ExecEngine engine,
                     const std::function<void(ClassBuilder&)>& define,
                     Tier tier = Tier::FusionOff, bool verify = true) {
  VmOptions opts = VmOptions::isolated();
  opts.exec_engine = engine;
  opts.verify = verify;
  if (engine != ExecEngine::Classic) applyTier(opts, tier);
  VM vm(opts);
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");
  vm.createIsolate(app, "app");
  ClassBuilder cb("app/T");
  define(cb);
  app->define(cb.build());
  JThread* t = vm.mainThread();
  EvalResult first;
  Value v = vm.callStaticIn(t, app, "app/T", "f", "()I", {});
  first.value = v.asInt();
  if (t->pending_exception != nullptr) first.error = vm.pendingMessage(t);
  vm.clearPending(t);
  EvalResult second;
  v = vm.callStaticIn(t, app, "app/T", "f", "()I", {});
  second.value = v.asInt();
  if (t->pending_exception != nullptr) second.error = vm.pendingMessage(t);
  vm.clearPending(t);
  EXPECT_EQ(first.value, second.value);
  EXPECT_EQ(first.error, second.error);
  return first;
}

void expectEnginesAgree(const std::function<void(ClassBuilder&)>& define) {
  EvalResult classic = evalTwice(ExecEngine::Classic, define);
  for (Tier tier : kTiers) {
    SCOPED_TRACE(tierName(tier));
    // With the tier thresholds at 0, the second execution inside
    // evalTwice runs the fused stream (fusion-on) or the compiled code
    // (jit-on) -- including its deopt path for sites whose resolution
    // fails and therefore never quicken.
    EvalResult quick = evalTwice(ExecEngine::Quickened, define, tier);
    EXPECT_EQ(classic.value, quick.value);
    EXPECT_EQ(classic.error, quick.error);
  }
}

TEST(ExceptionEquivalence, DivisionByZeroCaught) {
  expectEnginesAgree([](ClassBuilder& cb) {
    auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    m.bind(from).iconst(1).iconst(0).idiv().ireturn();
    m.bind(to);
    m.bind(handler).pop().iconst(-7).ireturn();
    m.handler(from, to, handler, "java/lang/ArithmeticException");
  });
}

TEST(ExceptionEquivalence, DivisionByZeroUncaught) {
  expectEnginesAgree([](ClassBuilder& cb) {
    auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
    m.iconst(1).iconst(0).irem().ireturn();
  });
}

TEST(ExceptionEquivalence, NullFieldAccess) {
  expectEnginesAgree([](ClassBuilder& cb) {
    cb.field("x", "I", ACC_PUBLIC);
    auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
    m.aconstNull().getfield("app/T", "x", "I").ireturn();
  });
}

TEST(ExceptionEquivalence, UnresolvableFieldThrowsLazilyEveryTime) {
  // Resolution failure must surface at the executing instruction on the
  // first *and* every later execution (the quickener must not rewrite an
  // instruction whose resolution failed).
  expectEnginesAgree([](ClassBuilder& cb) {
    auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
    m.getstatic("app/Missing", "nope", "I").ireturn();
  });
}

TEST(ExceptionEquivalence, UnresolvableMethodThrowsLazilyEveryTime) {
  expectEnginesAgree([](ClassBuilder& cb) {
    auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
    m.invokestatic("app/T", "missing", "()I").ireturn();
  });
}

TEST(ExceptionEquivalence, CheckcastFailure) {
  expectEnginesAgree([](ClassBuilder& cb) {
    auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
    m.newDefault("java/lang/Object");
    m.checkcast("java/lang/String");
    m.pop().iconst(0).ireturn();
  });
}

TEST(ExceptionEquivalence, ArrayBoundsCaught) {
  expectEnginesAgree([](ClassBuilder& cb) {
    auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    m.bind(from).iconst(3).newarray(Kind::Int).iconst(5).iaload().ireturn();
    m.bind(to);
    m.bind(handler).pop().iconst(-1).ireturn();
    m.handler(from, to, handler, "");
  });
}

// ---- isolate-aware statics: the cache must key on the executing isolate ----

// A framework-style shared class whose <clinit> and accessors run in the
// *accessing* isolate (MVM semantics): each bundle must observe its own
// copy of the static under both engines, even though the same rewritten
// instruction executes under several isolates.
TEST(IsolateStatics, PerIsolateCopiesSurviveQuickening) {
  for (ExecEngine engine : kEngines) {
    SCOPED_TRACE(engineName(engine));
    VmOptions opts = VmOptions::isolated();
    opts.exec_engine = engine;
    VM vm(opts);
    installSystemLibrary(vm);

    ClassLoader* shared = vm.registry().newLoader("shared");
    {
      ClassBuilder cb("lib/Counter");
      cb.field("count", "I", ACC_PUBLIC | ACC_STATIC);
      auto& clinit = cb.method("<clinit>", "()V", ACC_STATIC);
      clinit.iconst(100).putstatic("lib/Counter", "count", "I").ret();
      shared->define(cb.build());
    }
    Isolate* iso0 = vm.createIsolate(shared, "platform");
    (void)iso0;

    auto makeBundle = [&](const std::string& pkg) {
      ClassLoader* l = vm.registry().newLoader(pkg, shared);
      ClassBuilder cb(pkg + "/Main");
      auto& bump = cb.method("bump", "(I)I", ACC_PUBLIC | ACC_STATIC);
      // lib/Counter.count += n; return lib/Counter.count
      bump.getstatic("lib/Counter", "count", "I").iload(0).iadd();
      bump.putstatic("lib/Counter", "count", "I");
      bump.getstatic("lib/Counter", "count", "I").ireturn();
      l->define(cb.build());
      vm.createIsolate(l, pkg);
      return l;
    };
    ClassLoader* a = makeBundle("ba");
    ClassLoader* b = makeBundle("bb");

    JThread* t = vm.mainThread();
    auto bump = [&](ClassLoader* l, const std::string& pkg, i32 n) {
      Value r = vm.callStaticIn(t, l, pkg + "/Main", "bump", "(I)I",
                                {Value::ofInt(n)});
      EXPECT_EQ(t->pending_exception, nullptr) << vm.pendingMessage(t);
      return r.asInt();
    };

    // Interleave so each quickened site executes under both isolates:
    // every isolate starts from its own <clinit>-initialized copy (100).
    EXPECT_EQ(bump(a, "ba", 1), 101);
    EXPECT_EQ(bump(b, "bb", 5), 105);
    EXPECT_EQ(bump(a, "ba", 1), 102);
    EXPECT_EQ(bump(b, "bb", 5), 110);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(bump(a, "ba", 1), 103 + i);
    }
    EXPECT_EQ(bump(b, "bb", 5), 115);
  }
}

// ---- polymorphic + megamorphic virtual dispatch through the inline cache ----

TEST(InlineCaches, PolymorphicReceiversDispatchCorrectly) {
  for (ExecEngine engine : kEngines) {
    SCOPED_TRACE(engineName(engine));
    VmOptions opts = VmOptions::isolated();
    opts.exec_engine = engine;
    VM vm(opts);
    installSystemLibrary(vm);
    ClassLoader* app = vm.registry().newLoader("app");

    {
      ClassBuilder base("app/Base");
      auto& m = base.method("tag", "()I", ACC_PUBLIC);
      m.iconst(0).ireturn();
      app->define(base.build());
    }
    for (int k = 1; k <= 12; ++k) {
      ClassBuilder sub("app/Sub" + std::to_string(k), "app/Base");
      auto& m = sub.method("tag", "()I", ACC_PUBLIC);
      m.iconst(k).ireturn();
      app->define(sub.build());
    }
    {
      ClassBuilder cb("app/Drive");
      auto& m = cb.method("call", "(Lapp/Base;)I", ACC_PUBLIC | ACC_STATIC);
      m.aload(0).invokevirtual("app/Base", "tag", "()I").ireturn();
      app->define(cb.build());
    }
    vm.createIsolate(app, "app");
    JThread* t = vm.mainThread();

    // Cycle receivers through one call site: monomorphic hit, miss,
    // re-install, and finally the megamorphic pin -- dispatch must stay
    // exact throughout.
    for (int round = 0; round < 4; ++round) {
      for (int k = 1; k <= 12; ++k) {
        JClass* cls = vm.registry().resolve(app, "app/Sub" + std::to_string(k));
        ASSERT_NE(cls, nullptr);
        Object* obj = vm.allocObject(t, cls);
        ASSERT_NE(obj, nullptr);
        Value r = vm.callStaticIn(t, app, "app/Drive", "call", "(Lapp/Base;)I",
                                  {Value::ofRef(obj)});
        ASSERT_EQ(t->pending_exception, nullptr) << vm.pendingMessage(t);
        EXPECT_EQ(r.asInt(), k);
      }
    }

    // The megamorphic pin must bound cache allocation: 48 polymorphic
    // misses at one site may not allocate 48 entries.
    if (engine != ExecEngine::Classic) {
      auto st = std::static_pointer_cast<exec::ExecState>(
          vm.getExtension(exec::kStateKey));
      ASSERT_NE(st, nullptr);
      EXPECT_LE(st->vcall_ics.size(), exec::kMegamorphicMisses + 2);
    }
  }
}

// ---- attacks: the paper's robustness outcomes must be engine-independent ----

class AttackEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AttackEquivalence, OutcomeMatchesClassicEngine) {
  const AttackId id = static_cast<AttackId>(GetParam());
  AttackOutcome classic = runAttack(id, /*isolated=*/true, ExecEngine::Classic);
  for (Tier tier : kTiers) {
    SCOPED_TRACE(tierName(tier));
    AttackOutcome quick =
        runAttack(id, /*isolated=*/true,
                  tier == Tier::JitOn ? ExecEngine::Jit : ExecEngine::Quickened,
                  [tier](VmOptions& o) { applyTier(o, tier); });
    EXPECT_EQ(classic.victim_unaffected, quick.victim_unaffected)
        << classic.detail << " vs " << quick.detail;
    EXPECT_EQ(classic.attacker_identified, quick.attacker_identified)
        << classic.detail << " vs " << quick.detail;
    EXPECT_EQ(classic.attacker_stopped, quick.attacker_stopped)
        << classic.detail << " vs " << quick.detail;
    EXPECT_TRUE(quick.protectedOutcome()) << quick.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAttacks, AttackEquivalence, ::testing::Range(0, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(
                               attackName(static_cast<AttackId>(info.param)));
                         });

// ---- randomized cross-tier differential harness ----
// The fixed matrix above forces each tier on/off with thresholds at 0; the
// harness below sweeps the full configuration space the tier ladder
// actually ships -- fusion on/off x jit on/off x osr on/off x fusion/jit
// thresholds in {1, default, huge} x background compilation on/off x
// code-cache budget in {tiny, unlimited} -- under a seeded generator, so
// promotion can happen at entry, mid-invocation via OSR, asynchronously
// from the compiler thread, partially, or not at all, and compiled code
// can be demoted out from under a hot method at any install -- in
// randomized combinations. Every config must be observably identical to
// the classic interpreter. Reproduce a failure by feeding the printed
// seed to configFromSeed().

struct RandomTierConfig {
  bool fusion = true;
  bool jit = true;
  bool osr = true;
  u64 fusion_threshold = 0;
  u64 jit_threshold = 0;
  bool background = false;
  size_t cache_budget = 0;  // 0 = unlimited
  // Thread-count axis: >1 mutator workers runs the workload as that many
  // concurrent bundle copies on the mutator pool; compiler workers only
  // matter with background=1 (the manager spawns max(1, N) builders).
  u32 mutator_threads = 1;
  u32 compiler_threads = 1;
  // Communication axis (docs/comm.md): ownership donation on/off and the
  // vectored channel-send batch size. Exercised by the per-seed comm leg.
  bool comm_zero_copy = true;
  u32 channel_batch = 1;
  // Payoff axis (ISSUE 9, docs/jit.md "Payoff"): with the model on and
  // the sample cap tiny, windows settle (and demotions can fire) inside
  // the short sweep workloads -- compiled code may be yanked by its own
  // measurement at any point, and the run must stay observably classic.
  bool jit_payoff = false;
  u32 jit_payoff_samples = 32;

  std::string describe() const {
    auto th = [](u64 v) {
      return v == ~0ull ? std::string("huge") : strf("%llu", (unsigned long long)v);
    };
    return strf(
        "fusion=%d jit=%d osr=%d fusion_threshold=%s jit_threshold=%s "
        "background=%d cache_budget=%s mutators=%u compilers=%u "
        "zero_copy=%d batch=%u payoff=%d payoff_samples=%u",
        fusion ? 1 : 0, jit ? 1 : 0, osr ? 1 : 0, th(fusion_threshold).c_str(),
        th(jit_threshold).c_str(), background ? 1 : 0,
        cache_budget == 0 ? "unlimited" : strf("%zu", cache_budget).c_str(),
        mutator_threads, compiler_threads, comm_zero_copy ? 1 : 0,
        channel_batch, jit_payoff ? 1 : 0, jit_payoff_samples);
  }
};

RandomTierConfig configFromSeed(u64 seed) {
  Rng rng(seed);
  constexpr u64 kFusionThresholds[] = {1, 256, ~0ull};   // {1, default, huge}
  constexpr u64 kJitThresholds[] = {1, 2048, ~0ull};
  // Tiny = smaller than a single compiled method, so every install
  // overflows and demotes (maximum compile/demote churn); unlimited
  // exercises the steady state.
  constexpr size_t kCacheBudgets[] = {1024, 0};
  RandomTierConfig c;
  c.fusion = rng.nextBounded(2) == 1;
  c.jit = rng.nextBounded(2) == 1;
  c.osr = rng.nextBounded(2) == 1;
  c.fusion_threshold = kFusionThresholds[rng.nextBounded(3)];
  c.jit_threshold = kJitThresholds[rng.nextBounded(3)];
  c.background = rng.nextBounded(2) == 1;
  c.cache_budget = kCacheBudgets[rng.nextBounded(2)];
  // Drawn last so seeds reproduce the same tier config they did before the
  // thread axis existed.
  constexpr u32 kThreadCounts[] = {1, 2, 4};
  c.mutator_threads = kThreadCounts[rng.nextBounded(3)];
  c.compiler_threads = kThreadCounts[rng.nextBounded(3)];
  // Comm axes drawn after the thread axes, same reproducibility rule.
  constexpr u32 kBatches[] = {1, 8, 64};
  c.comm_zero_copy = rng.nextBounded(2) == 1;
  c.channel_batch = kBatches[rng.nextBounded(3)];
  // Payoff axis drawn after the comm axes (reproducibility rule: new
  // axes always append). A cap of 2 settles verdicts almost immediately;
  // 32 is the shipping default.
  constexpr u32 kPayoffSamples[] = {2, 32};
  c.jit_payoff = rng.nextBounded(2) == 1;
  c.jit_payoff_samples = kPayoffSamples[rng.nextBounded(2)];
#ifdef IJVM_TEST_MUTATOR_THREADS
  // CI matrix leg: pin the mutator axis so the whole 200-seed sweep runs
  // through the pool at a fixed worker count.
  c.mutator_threads = IJVM_TEST_MUTATOR_THREADS;
#endif
  return c;
}

void applyConfig(VmOptions& opts, const RandomTierConfig& c) {
  opts.exec_engine = c.jit ? ExecEngine::Jit : ExecEngine::Quickened;
  opts.fusion = c.fusion;
  opts.osr = c.osr;
  opts.fusion_threshold = c.fusion_threshold;
  opts.jit_threshold = c.jit_threshold;
  opts.background_compile = c.background;
  opts.code_cache_budget = c.cache_budget;
  opts.mutator_threads = c.mutator_threads;
  opts.compiler_threads = c.compiler_threads;
  opts.comm_zero_copy = c.comm_zero_copy;
  opts.channel_batch = c.channel_batch;
  opts.jit_payoff = c.jit_payoff;
  opts.jit_payoff_samples = c.jit_payoff_samples;
}

// Multi-threaded variant of runSpecOpts: `copies` identical bundles, one
// pool task each, executed by the VM's mutator pool
// (opts.mutator_threads workers). Returns one SpecRun per bundle. The
// pool may interleave and steal bundles across workers however it likes,
// but it must not change what any single bundle computes or is charged:
// every copy's per-isolate report must match the same-shaped serial
// classic run, element for element.
std::vector<SpecRun> runSpecPooled(const SpecWorkload& wl, i32 size,
                                   const VmOptions& opts, u32 copies) {
  VM vm(opts);
  installSystemLibrary(vm);
  // A separate platform isolate0 keeps every copy a plain bundle: pool
  // workers attach to isolate0 and *migrate* into the bundle they run, so
  // calls-in counts the pool entry like any other inter-isolate call.
  ClassLoader* platform = vm.registry().newLoader("platform");
  vm.createIsolate(platform, "platform");
  struct Copy {
    ClassLoader* loader = nullptr;
    Isolate* iso = nullptr;
    std::atomic<i32> checksum{0};
  };
  std::vector<std::unique_ptr<Copy>> bundles;
  for (u32 k = 0; k < copies; ++k) {
    auto c = std::make_unique<Copy>();
    const std::string name = strf("spec-%u", k);
    c->loader = vm.registry().newLoader(name);
    c->iso = vm.createIsolate(c->loader, name);
    bundles.push_back(std::move(c));
  }
  MutatorPool& pool = vm.mutatorPool();
  for (auto& b : bundles) {
    Copy* copy = b.get();
    pool.submit(
        [&vm, &wl, copy, size](JThread* t) {
          copy->checksum.store(runSpecWorkload(vm, t, copy->loader, wl, size),
                               std::memory_order_release);
        },
        copy->iso);
  }
  pool.drain();
  // Charges are reachability-based; compare them after a full collection.
  vm.collectGarbage(vm.mainThread(), nullptr);
  std::vector<SpecRun> out;
  for (auto& b : bundles) {
    SpecRun r;
    r.checksum = b->checksum.load(std::memory_order_acquire);
    r.bytes_charged = b->iso->stats.bytes_charged.load();
    r.objects_charged = b->iso->stats.objects_charged.load();
    r.objects_allocated = b->iso->stats.objects_allocated.load();
    r.calls_in = b->iso->stats.calls_in.load();
    out.push_back(r);
  }
  return out;
}

// CI requirement: at least 200 seeded configurations pass.
constexpr int kRandomConfigs = 200;
constexpr u64 kSeedBase = 0xD1FFC0DE0000ull;

// Classic-engine baselines, computed once per workload and shared by all
// random configs (the classic interpreter has no tiers to randomize).
const SpecRun& classicSpecBaseline(int wl_index, i32 size) {
  static std::map<int, SpecRun> cache;
  auto it = cache.find(wl_index);
  if (it == cache.end()) {
    const SpecWorkload wl = specWorkloads()[static_cast<size_t>(wl_index)];
    it = cache.emplace(wl_index, runSpec(wl, ExecEngine::Classic, size)).first;
  }
  return it->second;
}

// Serial classic oracle for the pooled shape: the same platform + N-copy
// bundle layout, run by a ONE-worker pool under the classic interpreter.
// Per-isolate observables cannot legally depend on the worker count, so
// every multi-threaded tiered run is compared copy-by-copy against this.
const std::vector<SpecRun>& classicPooledBaseline(int wl_index, i32 size,
                                                  u32 copies) {
  static std::map<std::pair<int, u32>, std::vector<SpecRun>> cache;
  const auto key = std::make_pair(wl_index, copies);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const SpecWorkload wl = specWorkloads()[static_cast<size_t>(wl_index)];
    VmOptions opts = VmOptions::isolated();
    opts.exec_engine = ExecEngine::Classic;
    opts.mutator_threads = 1;
    it = cache.emplace(key, runSpecPooled(wl, size, opts, copies)).first;
  }
  return it->second;
}

const AttackOutcome& classicAttackBaseline(int attack_index) {
  static std::map<int, AttackOutcome> cache;
  auto it = cache.find(attack_index);
  if (it == cache.end()) {
    it = cache
             .emplace(attack_index,
                      runAttack(static_cast<AttackId>(attack_index),
                                /*isolated=*/true, ExecEngine::Classic))
             .first;
  }
  return it->second;
}

// ---- inter-isolate communication leg (docs/comm.md) ----
//
// Every seeded config also runs a deterministic two-isolate message
// workload: 12 seeded graphs (shared payload arrays, a cycle, SSO-sized
// labels, some interned) are sent through transferGraph AND through a
// writev-batched serialize/deserialize loopback channel honoring
// opts.channel_batch; the receiver runs a guest sum() over every payload
// (exercising whatever tier ladder the config enables). The checksum and
// the post-GC per-isolate charges must match the classic copy-only
// oracle exactly -- donation and batching have to be observably free.
struct CommRun {
  i64 checksum = 0;
  u64 sender_bytes = 0, receiver_bytes = 0;
  u64 sender_objects = 0, receiver_objects = 0;
  u64 donated_out = 0;  // sanity only, never compared cross-mode
};

CommRun runCommRun(const VmOptions& opts) {
  VM vm(opts);
  installSystemLibrary(vm);
  ClassLoader* platform = vm.registry().newLoader("platform");
  vm.createIsolate(platform, "platform");
  ClassLoader* sl = vm.registry().newLoader("comm-send");
  Isolate* iso_s = vm.createIsolate(sl, "comm-send");
  ClassLoader* rl = vm.registry().newLoader("comm-recv");
  Isolate* iso_r = vm.createIsolate(rl, "comm-recv");
  JThread* st = vm.attachThread("comm-send", iso_s);
  JThread* rt = vm.attachThread("comm-recv", iso_r);

  // Message class lives in the receiver's loader so deserializeGraph can
  // resolve it; the sender allocates instances directly from the JClass*.
  {
    ClassBuilder cb("c/Msg");
    cb.field("value", "I");
    cb.field("label", "Ljava/lang/String;");
    cb.field("payload", "[I");
    cb.field("next", "Lc/Msg;");
    rl->define(cb.build());
  }
  {
    ClassBuilder cb("c/Lib");
    auto& m = cb.method("sum", "([I)I", ACC_PUBLIC | ACC_STATIC);
    Label loop = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(1).iconst(0).istore(2);
    m.bind(loop).iload(1).aload(0).arraylength().ifIcmpGe(done);
    m.aload(0).iload(1).iaload().iload(2).iadd().istore(2);
    m.iinc(1, 1).gotoLabel(loop);
    m.bind(done).iload(2).ireturn();
    rl->define(cb.build());
  }
  JClass* msg_cls = rl->find("c/Msg");
  JField* value_f = msg_cls->findField("value");
  JField* label_f = msg_cls->findField("label");
  JField* payload_f = msg_cls->findField("payload");
  JField* next_f = msg_cls->findField("next");

  i64 h = 1469598103934665603LL;
  auto mix = [&h](i64 v) { h = static_cast<i64>((static_cast<u64>(h) ^
                                                 static_cast<u64>(v)) *
                                                1099511628211ull); };
  // Receiver-side view of one message pair a -> b -> a: field values,
  // payload sums via the guest method, and the aliasing structure.
  auto digest = [&](Object* a) {
    if (a == nullptr) {
      mix(-1);
      return;
    }
    auto guestSum = [&](Object* arr) -> i64 {
      Value r = vm.callStaticIn(rt, rl, "c/Lib", "sum", "([I)I",
                                {Value::ofRef(arr)});
      if (rt->pending_exception != nullptr) {
        vm.clearPending(rt);
        return -0x5EED;
      }
      return r.asInt();
    };
    mix(a->fields()[value_f->slot].asInt());
    Object* la = a->fields()[label_f->slot].asRef();
    mix(la != nullptr ? static_cast<i64>(la->str().size()) : -1);
    if (la != nullptr) {
      for (char ch : la->str()) mix(ch);
    }
    mix(guestSum(a->fields()[payload_f->slot].asRef()));
    Object* b = a->fields()[next_f->slot].asRef();
    if (b != nullptr) {
      mix(b->fields()[value_f->slot].asInt());
      mix(guestSum(b->fields()[payload_f->slot].asRef()));
      mix(b->fields()[next_f->slot].asRef() == a ? 1 : 0);  // cycle kept
      mix(a->fields()[payload_f->slot].asRef() ==
                  b->fields()[payload_f->slot].asRef()
              ? 1
              : 0);  // sharing kept
    }
  };

  auto channel = ByteChannel::loopback();
  const u32 batch = opts.channel_batch == 0 ? 1 : opts.channel_batch;
  std::vector<std::string> frames;  // header,body per queued message
  std::vector<GlobalRef*> kept;
  constexpr int kMessages = 12;

  Rng rng(0xC0DE5EEDull);
  for (int i = 0; i < kMessages; ++i) {
    LocalRootScope roots(st);
    Object* a = roots.add(vm.allocObject(st, msg_cls));
    Object* b = roots.add(vm.allocObject(st, msg_cls));
    const i32 len =
        i % 4 == 3 ? 1024 : 32 + static_cast<i32>(rng.nextBounded(64));
    Object* arr =
        roots.add(vm.allocArrayObject(st, vm.registry().arrayClass("[I"), len));
    if (a == nullptr || b == nullptr || arr == nullptr) {
      mix(-2);
      continue;
    }
    for (i32 k = 0; k < len; ++k) arr->intElems()[k] = rng.nextInt();
    // SSO-sized labels keep string charges byte-identical across the
    // donate-vs-copy modes; every fifth is interned (donation-ineligible).
    std::string label =
        strf("m%x", static_cast<unsigned>(rng.nextBounded(1u << 16)));
    Object* s = i % 5 == 0 ? vm.internString(st, label)
                           : vm.newStringObject(st, label);
    if (s != nullptr) roots.add(s);
    a->fields()[value_f->slot] = Value::ofInt(rng.nextInt());
    a->fields()[label_f->slot] = Value::ofRef(s);
    a->fields()[payload_f->slot] = Value::ofRef(arr);
    a->fields()[next_f->slot] = Value::ofRef(b);
    b->fields()[value_f->slot] = Value::ofInt(rng.nextInt());
    b->fields()[payload_f->slot] = Value::ofRef(arr);  // shared subobject
    b->fields()[next_f->slot] = Value::ofRef(a);       // cycle

    // Channel leg first: encoding walks the graph read-only, so it must
    // happen before transferGraph donates the payload away. Frames are
    // flushed in channel_batch-sized vectored sends and decoded after the
    // loop, so the observable order is batch-independent.
    std::string enc = serializeGraph(vm, a);
    frames.push_back(strf("%09zu\n", enc.size()));
    frames.push_back(std::move(enc));
    if (frames.size() >= 2 * static_cast<size_t>(batch)) {
      channel->writev(frames.data(), frames.size());
      frames.clear();
    }

    LocalRootScope got_scope(rt);
    Object* got = transferGraph(vm, rt, iso_s, a);
    if (got != nullptr) got_scope.add(got);
    if (rt->pending_exception != nullptr) vm.clearPending(rt);
    digest(got);
    if (got != nullptr && i % 3 == 0) {
      kept.push_back(vm.addGlobalRef(got, iso_r));
    }
  }
  if (!frames.empty()) channel->writev(frames.data(), frames.size());

  for (int i = 0; i < kMessages; ++i) {
    std::string hdr, body;
    if (!channel->readFully(&hdr, 10)) {
      mix(-3);
      break;
    }
    const size_t len = static_cast<size_t>(std::stoll(hdr));
    if (!channel->readFully(&body, len)) {
      mix(-3);
      break;
    }
    LocalRootScope back_scope(rt);
    Object* back = deserializeGraph(vm, rt, body);
    if (back != nullptr) back_scope.add(back);
    if (rt->pending_exception != nullptr) vm.clearPending(rt);
    digest(back);
    if (back != nullptr && i % 4 == 0) {
      kept.push_back(vm.addGlobalRef(back, iso_r));
    }
  }

  // Charges are reachability-based; compare them after a full collection.
  vm.collectGarbage(vm.mainThread(), nullptr);
  CommRun out;
  out.checksum = h;
  out.sender_bytes = iso_s->stats.bytes_charged.load();
  out.receiver_bytes = iso_r->stats.bytes_charged.load();
  out.sender_objects = iso_s->stats.objects_charged.load();
  out.receiver_objects = iso_r->stats.objects_charged.load();
  out.donated_out = iso_s->stats.objects_donated_out.load();
  for (GlobalRef* ref : kept) vm.removeGlobalRef(ref);
  vm.detachThread(st);
  vm.detachThread(rt);
  return out;
}

const CommRun& classicCommBaseline() {
  static const CommRun baseline = [] {
    VmOptions opts = VmOptions::isolated();
    opts.exec_engine = ExecEngine::Classic;
    opts.comm_zero_copy = false;
    opts.channel_batch = 1;
    return runCommRun(opts);
  }();
  return baseline;
}

class RandomTierDifferential : public ::testing::TestWithParam<int> {};

TEST_P(RandomTierDifferential, MatchesClassicUnderRandomTierConfig) {
  const int index = GetParam();
  const u64 seed = kSeedBase + static_cast<u64>(index);
  const RandomTierConfig cfg = configFromSeed(seed);
  SCOPED_TRACE(strf("seed=0x%llx (%s)", (unsigned long long)seed,
                    cfg.describe().c_str()));

  {
    // Communication leg: identical messages, sums and post-GC charges
    // regardless of donation mode, batch size, or tier config.
    VmOptions opts = VmOptions::isolated();
    applyConfig(opts, cfg);
    const CommRun& classic = classicCommBaseline();
    const CommRun run = runCommRun(opts);
    EXPECT_EQ(classic.checksum, run.checksum);
    EXPECT_EQ(classic.sender_bytes, run.sender_bytes);
    EXPECT_EQ(classic.receiver_bytes, run.receiver_bytes);
    EXPECT_EQ(classic.sender_objects, run.sender_objects);
    EXPECT_EQ(classic.receiver_objects, run.receiver_objects);
    EXPECT_EQ(classic.donated_out, 0u);
#ifdef IJVM_DISABLE_ZERO_COPY
    EXPECT_EQ(run.donated_out, 0u);
#else
    if (cfg.comm_zero_copy) {
      EXPECT_GT(run.donated_out, 0u);
    } else {
      EXPECT_EQ(run.donated_out, 0u);
    }
#endif
  }

  // Workloads cycle deterministically so the 200 configs spread across all
  // seven SPEC analogs and all eight attacks.
  const int kSpecCount = 7, kAttackCount = 8;
  const int pick = index % (kSpecCount + kAttackCount);
  if (pick < kSpecCount) {
    const SpecWorkload wl = specWorkloads()[static_cast<size_t>(pick)];
    SCOPED_TRACE(strf("workload=%s", wl.name.c_str()));
    const i32 size = std::max(1, wl.default_size / 8);
    VmOptions opts = VmOptions::isolated();
    applyConfig(opts, cfg);
    if (cfg.mutator_threads > 1) {
      // Thread-count leg: one bundle copy per pool worker, each compared
      // against the serial classic run of the identical shape.
      const u32 copies = cfg.mutator_threads;
      const std::vector<SpecRun>& classic =
          classicPooledBaseline(pick, size, copies);
      const std::vector<SpecRun> runs = runSpecPooled(wl, size, opts, copies);
      ASSERT_EQ(classic.size(), runs.size());
      for (size_t k = 0; k < runs.size(); ++k) {
        SCOPED_TRACE(strf("bundle=%zu", k));
        EXPECT_EQ(classic[k].checksum, runs[k].checksum);
        EXPECT_EQ(classic[k].calls_in, runs[k].calls_in);
        EXPECT_EQ(classic[k].bytes_charged, runs[k].bytes_charged);
        EXPECT_EQ(classic[k].objects_charged, runs[k].objects_charged);
        if (wl.name != "mtrt") {  // thread interleaving (see SpecEquivalence)
          EXPECT_EQ(classic[k].objects_allocated, runs[k].objects_allocated);
        }
        EXPECT_LE(runs[k].objects_charged, runs[k].objects_allocated);
      }
      return;
    }
    const SpecRun& classic = classicSpecBaseline(pick, size);
    SpecRun run = runSpecOpts(wl, size, opts);
    // Identical results and identical reachability-based charges.
    EXPECT_EQ(classic.checksum, run.checksum);
    EXPECT_EQ(classic.calls_in, run.calls_in);
    EXPECT_EQ(classic.bytes_charged, run.bytes_charged);
    EXPECT_EQ(classic.objects_charged, run.objects_charged);
    if (wl.name != "mtrt") {  // thread interleaving (see SpecEquivalence)
      EXPECT_EQ(classic.objects_allocated, run.objects_allocated);
    }
    // ResourceStats invariants that must hold under every tier config.
    EXPECT_LE(run.objects_charged, run.objects_allocated);
    if (run.bytes_charged == 0) {
      EXPECT_EQ(run.objects_charged, 0u);
    }
  } else {
    const int attack = pick - kSpecCount;
    SCOPED_TRACE(strf("attack=%s", attackName(static_cast<AttackId>(attack))));
    const AttackOutcome& classic = classicAttackBaseline(attack);
    AttackOutcome run =
        runAttack(static_cast<AttackId>(attack), /*isolated=*/true,
                  cfg.jit ? ExecEngine::Jit : ExecEngine::Quickened,
                  [&cfg](VmOptions& o) { applyConfig(o, cfg); });
    EXPECT_EQ(classic.victim_unaffected, run.victim_unaffected)
        << classic.detail << " vs " << run.detail;
    EXPECT_EQ(classic.attacker_identified, run.attacker_identified)
        << classic.detail << " vs " << run.detail;
    EXPECT_EQ(classic.attacker_stopped, run.attacker_stopped)
        << classic.detail << " vs " << run.detail;
    EXPECT_TRUE(run.protectedOutcome()) << run.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(SeededConfigs, RandomTierDifferential,
                         ::testing::Range(0, kRandomConfigs));

// ---- the quickened stream itself: rewrites + disassembly ----

TEST(Quickening, DisassemblyShowsQuickenedForms) {
  VmOptions opts = VmOptions::isolated();
  opts.exec_engine = ExecEngine::Quickened;
  VM vm(opts);
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");
  ClassBuilder cb("app/T");
  cb.field("s", "I", ACC_PUBLIC | ACC_STATIC);
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.getstatic("app/T", "s", "I").iconst(1).iadd();
  m.putstatic("app/T", "s", "I");
  m.getstatic("app/T", "s", "I").ireturn();
  app->define(cb.build());
  vm.createIsolate(app, "app");

  JClass* cls = vm.registry().resolve(app, "app/T");
  ASSERT_NE(cls, nullptr);
  JMethod* method = cls->findMethod("f", "()I");
  ASSERT_NE(method, nullptr);
  EXPECT_EQ(exec::disasmQuickened(vm, method), "");  // not yet executed

  Value r = vm.callStaticIn(vm.mainThread(), app, "app/T", "f", "()I", {});
  ASSERT_EQ(vm.mainThread()->pending_exception, nullptr);
  EXPECT_EQ(r.asInt(), 1);

  std::string dis = exec::disasmQuickened(vm, method);
  EXPECT_NE(dis.find("GETSTATIC_Q"), std::string::npos) << dis;
  EXPECT_NE(dis.find("PUTSTATIC_Q"), std::string::npos) << dis;
  EXPECT_NE(dis.find("app/T.s:I"), std::string::npos) << dis;

  // Profile counters moved (engine seam for the governor / future tiers).
  EXPECT_EQ(method->profile_invocations.load(), 1u);
  Isolate* iso = vm.isolateById(0);
  ASSERT_NE(iso, nullptr);
  EXPECT_GE(iso->stats.method_invocations.load(), 1u);
}

TEST(Quickening, LoopEdgeCountersAccumulate) {
  VmOptions opts = VmOptions::isolated();
  opts.exec_engine = ExecEngine::Quickened;
  VM vm(opts);
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");
  ClassBuilder cb("app/Loop");
  auto& m = cb.method("f", "(I)I", ACC_PUBLIC | ACC_STATIC);
  Label head = m.newLabel(), done = m.newLabel();
  m.iconst(0).istore(1);
  m.bind(head).iload(1).iload(0).ifIcmpGe(done);
  m.iinc(1, 1).gotoLabel(head);
  m.bind(done).iload(1).ireturn();
  app->define(cb.build());
  vm.createIsolate(app, "app");

  Value r = vm.callStaticIn(vm.mainThread(), app, "app/Loop", "f", "(I)I",
                            {Value::ofInt(1000)});
  ASSERT_EQ(vm.mainThread()->pending_exception, nullptr);
  EXPECT_EQ(r.asInt(), 1000);

  JMethod* method =
      vm.registry().resolve(app, "app/Loop")->findMethod("f", "(I)I");
  ASSERT_NE(method, nullptr);
  EXPECT_GE(method->profile_loop_edges.load(), 1000u);
  Isolate* iso = vm.isolateById(0);
  EXPECT_GE(iso->stats.loop_back_edges.load(), 1000u);
}

}  // namespace
}  // namespace ijvm
