// OSGi framework integration: lifecycle, services, inter-bundle calls,
// isolation of statics between bundles, and bundle termination.
#include <gtest/gtest.h>

#include "bytecode/builder.h"
#include "heap/object.h"
#include "osgi/framework.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

namespace ijvm {
namespace {

struct OsgiFixture : ::testing::Test {
  void boot(VmOptions opts = VmOptions{}) {
    vm = std::make_unique<VM>(opts);
    installSystemLibrary(*vm);
    fw = std::make_unique<Framework>(*vm);
    defineCounterApi(*fw);
  }
  void TearDown() override {
    fw.reset();
    vm.reset();
  }
  std::unique_ptr<VM> vm;
  std::unique_ptr<Framework> fw;
};

TEST_F(OsgiFixture, ServiceRegistrationAndInterBundleCall) {
  boot();
  Bundle* provider = fw->install(makeCounterProvider("prov", "counter"));
  Bundle* client = fw->install(makeCounterClient("cli", "counter"));
  ASSERT_TRUE(fw->start(provider));
  ASSERT_TRUE(fw->start(client));

  ASSERT_NE(fw->getService("counter"), nullptr);
  EXPECT_EQ(fw->serviceOwner("counter"), provider);

  JThread* t = vm->mainThread();
  const u64 calls_before = vm->interIsolateCalls();
  Value r = vm->callStaticIn(t, client->loader(), "cli/Client", "callMany", "(I)I",
                            {Value::ofInt(10)});
  ASSERT_EQ(t->pending_exception, nullptr) << vm->pendingMessage(t);
  EXPECT_EQ(r.asInt(), 10);
  // main->client plus client->provider per iteration.
  EXPECT_GE(vm->interIsolateCalls() - calls_before, 11u);

  // The provider's isolate got charged the calls into it.
  EXPECT_GE(provider->isolate()->stats.calls_in.load(), 10u);
  (void)client;
}

TEST_F(OsgiFixture, StaticsAreIsolatedBetweenBundles) {
  boot();
  // Two bundles share one *class source* shape but have separate loaders;
  // more interestingly, a bundle reading another bundle's class statics
  // sees its own TCM copy (attack A1's defence).
  BundleDescriptor victim;
  victim.symbolic_name = "victim";
  {
    ClassBuilder cb("victim/Data");
    cb.field("shared", "I", ACC_PUBLIC | ACC_STATIC);
    auto& set = cb.method("set", "(I)V", ACC_PUBLIC | ACC_STATIC);
    set.iload(0).putstatic("victim/Data", "shared", "I").ret();
    auto& get = cb.method("get", "()I", ACC_PUBLIC | ACC_STATIC);
    get.getstatic("victim/Data", "shared", "I").ireturn();
    victim.classes.push_back(cb.build());
  }
  Bundle* vb = fw->install(std::move(victim));
  ASSERT_TRUE(fw->start(vb));

  JThread* t = vm->mainThread();
  // Victim writes 42 into its own copy (call migrates into victim isolate).
  vm->callStaticIn(t, vb->loader(), "victim/Data", "set", "(I)V",
                   {Value::ofInt(42)});
  ASSERT_EQ(t->pending_exception, nullptr) << vm->pendingMessage(t);

  // A second bundle (same loader delegation via its own class referencing
  // victim/Data would not resolve; the framework-level equivalent is a
  // direct read from Isolate0, which sees Isolate0's own TCM copy = 0).
  // Reading "as" the victim shows 42.
  Value own = vm->callStaticIn(t, vb->loader(), "victim/Data", "get", "()I", {});
  EXPECT_EQ(own.asInt(), 42);
}

TEST_F(OsgiFixture, KillBundlePoisonsItsMethods) {
  boot();
  Bundle* provider = fw->install(makeCounterProvider("prov2", "counter2"));
  Bundle* client = fw->install(makeCounterClient("cli2", "counter2"));
  ASSERT_TRUE(fw->start(provider));
  ASSERT_TRUE(fw->start(client));

  JThread* t = vm->mainThread();
  Value before =
      vm->callStaticIn(t, client->loader(), "cli2/Client", "callOnce", "()I", {});
  ASSERT_EQ(t->pending_exception, nullptr) << vm->pendingMessage(t);
  EXPECT_EQ(before.asInt(), 1);

  fw->killBundle(provider);
  EXPECT_EQ(provider->state(), BundleState::Uninstalled);
  EXPECT_NE(provider->isolate()->state.load(), IsolateState::Active);

  // Unguarded call: the StoppedIsolateException unwinds out to C++.
  vm->callStaticIn(t, client->loader(), "cli2/Client", "callOnce", "()I", {});
  ASSERT_NE(t->pending_exception, nullptr);
  EXPECT_NE(vm->pendingMessage(t).find("StoppedIsolate"), std::string::npos);
  vm->clearPending(t);

  // Guarded call: the *client* may catch it (only the dying isolate's
  // handlers are skipped).
  Value guarded =
      vm->callStaticIn(t, client->loader(), "cli2/Client", "callGuarded", "()I", {});
  ASSERT_EQ(t->pending_exception, nullptr) << vm->pendingMessage(t);
  EXPECT_EQ(guarded.asInt(), -1);
}

TEST_F(OsgiFixture, StoppedBundleEventBroadcast) {
  boot();
  // A watcher bundle registers a BundleListener and records events.
  BundleDescriptor watcher;
  watcher.symbolic_name = "watch";
  {
    ClassBuilder cb("watch/Listener");
    cb.addInterface("osgi/BundleListener");
    cb.field("lastStopped", "I", ACC_PUBLIC | ACC_STATIC);
    auto& on = cb.method("bundleStopped", "(I)V");
    on.iload(1).putstatic("watch/Listener", "lastStopped", "I").ret();
    auto& last = cb.method("last", "()I", ACC_PUBLIC | ACC_STATIC);
    last.getstatic("watch/Listener", "lastStopped", "I").ireturn();
    watcher.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("watch/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.aload(1);
    start.newDefault("watch/Listener");
    start.invokevirtual("osgi/BundleContext", "addBundleListener",
                        "(Losgi/BundleListener;)V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    watcher.classes.push_back(cb.build());
    watcher.activator = "watch/Activator";
  }
  Bundle* wb = fw->install(std::move(watcher));
  ASSERT_TRUE(fw->start(wb));

  Bundle* doomed = fw->install(makeCounterProvider("doomed", "svc.doomed"));
  ASSERT_TRUE(fw->start(doomed));
  fw->killBundle(doomed);

  JThread* t = vm->mainThread();
  Value last = vm->callStaticIn(t, wb->loader(), "watch/Listener", "last", "()I", {});
  ASSERT_EQ(t->pending_exception, nullptr) << vm->pendingMessage(t);
  EXPECT_EQ(last.asInt(), doomed->id());
}

TEST_F(OsgiFixture, ServiceObjectSurvivesOwnerTerminationWhileReferenced) {
  boot();
  Bundle* provider = fw->install(makeCounterProvider("prov3", "counter3"));
  ASSERT_TRUE(fw->start(provider));

  Object* svc = fw->getService("counter3");
  ASSERT_NE(svc, nullptr);
  // Another party (here: C++ test standing in for a client bundle) keeps a
  // reference to the service object.
  GlobalRef* held = vm->addGlobalRef(svc, fw->frameworkIsolate());

  fw->killBundle(provider);
  // The object is still alive (referenced) even though its bundle is gone:
  // "resources from the terminating bundle will not be released until all
  // bundles release their references" (paper rule 3).
  bool found = false;
  vm->heap().forEachObject([&](Object* o) {
    if (o == svc) found = true;
  });
  EXPECT_TRUE(found);
  // The isolate is Terminating, not Dead, while objects survive.
  EXPECT_EQ(provider->isolate()->state.load(), IsolateState::Terminating);

  vm->removeGlobalRef(held);
  vm->collectGarbage(vm->mainThread(), nullptr);
  found = false;
  vm->heap().forEachObject([&](Object* o) {
    if (o == svc) found = true;
  });
  EXPECT_FALSE(found);
  EXPECT_EQ(provider->isolate()->state.load(), IsolateState::Dead);
}

}  // namespace
}  // namespace ijvm
