// Extended system-library classes (stdlib_extra.cpp): LinkedList, Random,
// Arrays, Integer, Long and the second-tier String methods.
#include <gtest/gtest.h>

#include "bytecode/builder.h"
#include "heap/object.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"

namespace ijvm {
namespace {

struct ExtraFixture : ::testing::Test {
  void SetUp() override {
    vm = std::make_unique<VM>();
    installSystemLibrary(*vm);
    app = vm->registry().newLoader("app");
    iso = vm->createIsolate(app, "app");
  }
  void TearDown() override { vm.reset(); }

  Value run(ClassBuilder& cb, const std::string& method, const std::string& desc,
            std::vector<Value> args = {}) {
    std::string cls = cb.name();
    app->define(cb.build());
    JThread* t = vm->mainThread();
    Value r = vm->callStaticIn(t, app, cls, method, desc, std::move(args));
    last_error = t->pending_exception != nullptr ? vm->pendingMessage(t) : "";
    vm->clearPending(t);
    return r;
  }

  // Runs a zero-arg static int method.
  i32 runInt(ClassBuilder& cb) {
    Value r = run(cb, "f", "()I");
    EXPECT_TRUE(last_error.empty()) << last_error;
    return r.kind == Kind::Int ? r.asInt() : INT32_MIN;
  }

  std::string runStr(ClassBuilder& cb) {
    Value r = run(cb, "f", "()Ljava/lang/String;");
    EXPECT_TRUE(last_error.empty()) << last_error;
    return r.kind == Kind::Ref && r.asRef() != nullptr
               ? VM::stringValue(r.asRef())
               : "<error>";
  }

  std::unique_ptr<VM> vm;
  ClassLoader* app = nullptr;
  Isolate* iso = nullptr;
  std::string last_error;
};

// --------------------------------------------------------------- LinkedList

TEST_F(ExtraFixture, LinkedListDequeOperations) {
  ClassBuilder cb("x/Dq");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.newDefault("java/util/LinkedList").astore(0);
  // addLast "b", addFirst "a", addLast "c"  -> [a, b, c]
  m.aload(0).ldcStr("b").invokevirtual("java/util/LinkedList", "addLast",
                                       "(Ljava/lang/Object;)V");
  m.aload(0).ldcStr("a").invokevirtual("java/util/LinkedList", "addFirst",
                                       "(Ljava/lang/Object;)V");
  m.aload(0).ldcStr("c").invokevirtual("java/util/LinkedList", "addLast",
                                       "(Ljava/lang/Object;)V");
  // removeFirst -> "a" (length 1); size now 2
  m.aload(0).invokevirtual("java/util/LinkedList", "removeFirst",
                           "()Ljava/lang/Object;");
  m.checkcast("java/lang/String");
  m.invokevirtual("java/lang/String", "length", "()I").istore(1);
  m.aload(0).invokevirtual("java/util/LinkedList", "size", "()I");
  m.iconst(100).imul().iload(1).iadd().ireturn();
  EXPECT_EQ(runInt(cb), 201);
}

TEST_F(ExtraFixture, LinkedListPeekDoesNotRemove) {
  ClassBuilder cb("x/Pk");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.newDefault("java/util/LinkedList").astore(0);
  m.aload(0).ldcStr("only").invokevirtual("java/util/LinkedList", "addLast",
                                          "(Ljava/lang/Object;)V");
  m.aload(0).invokevirtual("java/util/LinkedList", "peekFirst",
                           "()Ljava/lang/Object;").pop();
  m.aload(0).invokevirtual("java/util/LinkedList", "peekLast",
                           "()Ljava/lang/Object;").pop();
  m.aload(0).invokevirtual("java/util/LinkedList", "size", "()I").ireturn();
  EXPECT_EQ(runInt(cb), 1);
}

TEST_F(ExtraFixture, LinkedListRemoveFromEmptyThrows) {
  ClassBuilder cb("x/Emp");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.newDefault("java/util/LinkedList");
  m.invokevirtual("java/util/LinkedList", "removeFirst", "()Ljava/lang/Object;");
  m.pop().iconst(0).ireturn();
  run(cb, "f", "()I");
  EXPECT_NE(last_error.find("IllegalStateException"), std::string::npos)
      << last_error;
}

TEST_F(ExtraFixture, LinkedListPeekEmptyReturnsNull) {
  ClassBuilder cb("x/PkE");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.newDefault("java/util/LinkedList");
  m.invokevirtual("java/util/LinkedList", "peekFirst", "()Ljava/lang/Object;");
  Label isnull = m.newLabel();
  m.ifNull(isnull);
  m.iconst(0).ireturn();
  m.bind(isnull).iconst(1).ireturn();
  EXPECT_EQ(runInt(cb), 1);
}

// ------------------------------------------------------------------ Random

TEST_F(ExtraFixture, RandomSameSeedSameStream) {
  ClassBuilder cb("x/Rnd");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  // Two generators with the same seed must agree on 8 draws.
  m.newObject("java/util/Random").dup().lconst(12345);
  m.invokespecial("java/util/Random", "<init>", "(J)V").astore(0);
  m.newObject("java/util/Random").dup().lconst(12345);
  m.invokespecial("java/util/Random", "<init>", "(J)V").astore(1);
  Label fail = m.newLabel();
  for (int i = 0; i < 8; ++i) {
    m.aload(0).iconst(1000).invokevirtual("java/util/Random", "nextInt", "(I)I");
    m.aload(1).iconst(1000).invokevirtual("java/util/Random", "nextInt", "(I)I");
    m.ifIcmpNe(fail);
  }
  m.iconst(1).ireturn();
  m.bind(fail).iconst(0).ireturn();
  EXPECT_EQ(runInt(cb), 1);
}

TEST_F(ExtraFixture, RandomBoundRespected) {
  ClassBuilder cb("x/RndB");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.newObject("java/util/Random").dup().lconst(7);
  m.invokespecial("java/util/Random", "<init>", "(J)V").astore(0);
  Label fail = m.newLabel(), loop = m.newLabel(), done = m.newLabel();
  m.iconst(0).istore(1);
  m.bind(loop).iload(1).iconst(200).ifIcmpGe(done);
  m.aload(0).iconst(10).invokevirtual("java/util/Random", "nextInt", "(I)I");
  m.istore(2);
  m.iload(2).iflt(fail);
  m.iload(2).iconst(10).ifIcmpGe(fail);
  m.iinc(1, 1).gotoLabel(loop);
  m.bind(done).iconst(1).ireturn();
  m.bind(fail).iconst(0).ireturn();
  EXPECT_EQ(runInt(cb), 1);
}

TEST_F(ExtraFixture, RandomNonPositiveBoundThrows) {
  ClassBuilder cb("x/RndN");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.newDefault("java/util/Random");
  m.iconst(0).invokevirtual("java/util/Random", "nextInt", "(I)I").ireturn();
  run(cb, "f", "()I");
  EXPECT_NE(last_error.find("IllegalArgumentException"), std::string::npos);
}

// --------------------------------------------------------- Integer / Long

TEST_F(ExtraFixture, IntegerParseAndToStringRoundTrip) {
  ClassBuilder cb("x/Int");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.ldcStr("-12345").invokestatic("java/lang/Integer", "parseInt",
                                  "(Ljava/lang/String;)I");
  m.ireturn();
  EXPECT_EQ(runInt(cb), -12345);

  ClassBuilder cb2("x/Int2");
  auto& g = cb2.method("f", "()Ljava/lang/String;", ACC_PUBLIC | ACC_STATIC);
  g.iconst(-987).invokestatic("java/lang/Integer", "toString",
                              "(I)Ljava/lang/String;");
  g.areturn();
  EXPECT_EQ(runStr(cb2), "-987");
}

TEST_F(ExtraFixture, IntegerParseRejectsGarbage) {
  for (const char* bad : {"", "-", "12x3", "99999999999999999999"}) {
    ClassBuilder cb(std::string("x/Bad") + std::to_string(reinterpret_cast<uintptr_t>(bad) % 1000));
    auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
    m.ldcStr(bad).invokestatic("java/lang/Integer", "parseInt",
                               "(Ljava/lang/String;)I");
    m.ireturn();
    run(cb, "f", "()I");
    EXPECT_NE(last_error.find("NumberFormatException"), std::string::npos)
        << "input: " << bad;
  }
}

TEST_F(ExtraFixture, IntegerParseBoundaries) {
  for (auto [text, expect] : std::vector<std::pair<const char*, i32>>{
           {"2147483647", INT32_MAX}, {"-2147483648", INT32_MIN}, {"0", 0}}) {
    ClassBuilder cb(std::string("x/B") + std::to_string(expect < 0 ? 1 : expect % 97));
    auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
    m.ldcStr(text).invokestatic("java/lang/Integer", "parseInt",
                                "(Ljava/lang/String;)I");
    m.ireturn();
    EXPECT_EQ(runInt(cb), expect) << text;
  }
}

TEST_F(ExtraFixture, IntegerBitHelpers) {
  ClassBuilder cb("x/Bits");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  // bitCount(0b1011) * 1000 + highestOneBit(0b1011)
  m.iconst(11).invokestatic("java/lang/Integer", "bitCount", "(I)I");
  m.iconst(1000).imul();
  m.iconst(11).invokestatic("java/lang/Integer", "highestOneBit", "(I)I");
  m.iadd().ireturn();
  EXPECT_EQ(runInt(cb), 3008);
}

TEST_F(ExtraFixture, IntegerToHexString) {
  ClassBuilder cb("x/Hex");
  auto& m = cb.method("f", "()Ljava/lang/String;", ACC_PUBLIC | ACC_STATIC);
  m.iconst(48879).invokestatic("java/lang/Integer", "toHexString",
                               "(I)Ljava/lang/String;");
  m.areturn();
  EXPECT_EQ(runStr(cb), "beef");
}

TEST_F(ExtraFixture, LongParseAndToString) {
  ClassBuilder cb("x/Lng");
  auto& m = cb.method("f", "()Ljava/lang/String;", ACC_PUBLIC | ACC_STATIC);
  m.ldcStr("-9223372036854775808")
      .invokestatic("java/lang/Long", "parseLong", "(Ljava/lang/String;)J");
  m.invokestatic("java/lang/Long", "toString", "(J)Ljava/lang/String;");
  m.areturn();
  EXPECT_EQ(runStr(cb), "-9223372036854775808");
}

// ------------------------------------------------------------------ Arrays

TEST_F(ExtraFixture, ArraysFillSortSearch) {
  ClassBuilder cb("x/Arr");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  // a = new int[5]; a[i] = 5 - i (reverse-sorted); sort; binarySearch(4)
  m.iconst(5).newarray(Kind::Int).astore(0);
  for (int i = 0; i < 5; ++i) {
    m.aload(0).iconst(i).iconst(5 - i).iastore();
  }
  m.aload(0).invokestatic("java/util/Arrays", "sort", "([I)V");
  m.aload(0).iconst(4).invokestatic("java/util/Arrays", "binarySearch", "([II)I");
  m.ireturn();
  EXPECT_EQ(runInt(cb), 3);  // sorted [1..5]; 4 at index 3
}

TEST_F(ExtraFixture, ArraysBinarySearchMissReturnsInsertionPoint) {
  ClassBuilder cb("x/Bs");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.iconst(3).newarray(Kind::Int).astore(0);
  // [10, 20, 30]; search 25 -> -(2)-1 = -3
  m.aload(0).iconst(0).iconst(10).iastore();
  m.aload(0).iconst(1).iconst(20).iastore();
  m.aload(0).iconst(2).iconst(30).iastore();
  m.aload(0).iconst(25).invokestatic("java/util/Arrays", "binarySearch", "([II)I");
  m.ireturn();
  EXPECT_EQ(runInt(cb), -3);
}

TEST_F(ExtraFixture, ArraysCopyOfAndEquals) {
  ClassBuilder cb("x/Cp");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.iconst(3).newarray(Kind::Int).astore(0);
  m.aload(0).iconst(7).invokestatic("java/util/Arrays", "fill", "([II)V");
  // copyOf to same length -> equal; copyOf to longer -> not equal
  m.aload(0).iconst(3).invokestatic("java/util/Arrays", "copyOf", "([II)[I");
  m.astore(1);
  m.aload(0).aload(1).invokestatic("java/util/Arrays", "equals", "([I[I)I");
  m.iconst(10).imul();
  m.aload(0).iconst(4).invokestatic("java/util/Arrays", "copyOf", "([II)[I");
  m.astore(2);
  m.aload(0).aload(2).invokestatic("java/util/Arrays", "equals", "([I[I)I");
  m.iadd().ireturn();
  EXPECT_EQ(runInt(cb), 10);
}

TEST_F(ExtraFixture, ArraysHashCodeMatchesJavaContract) {
  ClassBuilder cb("x/Hc");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.iconst(2).newarray(Kind::Int).astore(0);
  m.aload(0).iconst(0).iconst(1).iastore();
  m.aload(0).iconst(1).iconst(2).iastore();
  m.aload(0).invokestatic("java/util/Arrays", "hashCode", "([I)I").ireturn();
  // ((1*31)+1)*31+2 = 994
  EXPECT_EQ(runInt(cb), 994);
}

TEST_F(ExtraFixture, ArraysNullArgumentThrowsNpe) {
  ClassBuilder cb("x/Np");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.aconstNull().checkcast("[I").iconst(1)
      .invokestatic("java/util/Arrays", "fill", "([II)V");
  m.iconst(0).ireturn();
  run(cb, "f", "()I");
  EXPECT_NE(last_error.find("NullPointerException"), std::string::npos);
}

// ----------------------------------------------------------- String extras

TEST_F(ExtraFixture, StringCaseTrimReplace) {
  ClassBuilder cb("x/Str");
  auto& m = cb.method("f", "()Ljava/lang/String;", ACC_PUBLIC | ACC_STATIC);
  m.ldcStr("  Hello-World  ");
  m.invokevirtual("java/lang/String", "trim", "()Ljava/lang/String;");
  m.invokevirtual("java/lang/String", "toLowerCase", "()Ljava/lang/String;");
  m.iconst('-').iconst('_');
  m.invokevirtual("java/lang/String", "replace", "(II)Ljava/lang/String;");
  m.areturn();
  EXPECT_EQ(runStr(cb), "hello_world");
}

TEST_F(ExtraFixture, StringSearchMethods) {
  ClassBuilder cb("x/Srch");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  // endsWith*1000 + contains*100 + indexOf("lo") (= 3)
  m.ldcStr("hello").ldcStr("llo")
      .invokevirtual("java/lang/String", "endsWith", "(Ljava/lang/String;)I");
  m.iconst(1000).imul();
  m.ldcStr("hello").ldcStr("ell")
      .invokevirtual("java/lang/String", "contains", "(Ljava/lang/String;)I");
  m.iconst(100).imul().iadd();
  m.ldcStr("hello").ldcStr("lo")
      .invokevirtual("java/lang/String", "indexOf", "(Ljava/lang/String;)I");
  m.iadd().ireturn();
  EXPECT_EQ(runInt(cb), 1103);
}

TEST_F(ExtraFixture, StringSplit) {
  ClassBuilder cb("x/Spl");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  // "a,bb,,ccc".split(",") -> 4 parts; return count*1000 + len[1]*10 + len[2]
  m.ldcStr("a,bb,,ccc").ldcStr(",");
  m.invokevirtual("java/lang/String", "split",
                  "(Ljava/lang/String;)[Ljava/lang/String;");
  m.astore(0);
  m.aload(0).arraylength().iconst(1000).imul();
  m.aload(0).iconst(1).aaload()
      .invokevirtual("java/lang/String", "length", "()I");
  m.iconst(10).imul().iadd();
  m.aload(0).iconst(2).aaload()
      .invokevirtual("java/lang/String", "length", "()I");
  m.iadd().ireturn();
  EXPECT_EQ(runInt(cb), 4020);
}

TEST_F(ExtraFixture, StringUpperLower) {
  ClassBuilder cb("x/Ul");
  auto& m = cb.method("f", "()Ljava/lang/String;", ACC_PUBLIC | ACC_STATIC);
  m.ldcStr("MiXeD");
  m.invokevirtual("java/lang/String", "toUpperCase", "()Ljava/lang/String;");
  m.areturn();
  EXPECT_EQ(runStr(cb), "MIXED");
}

TEST_F(ExtraFixture, StringLastIndexOf) {
  ClassBuilder cb("x/Lio");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.ldcStr("abcabc").iconst('b')
      .invokevirtual("java/lang/String", "lastIndexOf", "(I)I");
  m.ireturn();
  EXPECT_EQ(runInt(cb), 4);
}

// Library allocations remain charged to the *calling* isolate (paper 3.2).
TEST_F(ExtraFixture, ExtraLibraryAllocationsChargedToCaller) {
  ClassBuilder cb("x/Chg");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  Label loop = m.newLabel(), done = m.newLabel();
  m.iconst(0).istore(0);
  m.bind(loop).iload(0).iconst(200).ifIcmpGe(done);
  m.iconst(1000).invokestatic("java/lang/Integer", "toString",
                              "(I)Ljava/lang/String;").pop();
  m.iinc(0, 1).gotoLabel(loop);
  m.bind(done).iload(0).ireturn();
  u64 before = iso->stats.objects_allocated.load();
  EXPECT_EQ(runInt(cb), 200);
  EXPECT_GE(iso->stats.objects_allocated.load(), before + 200);
}

}  // namespace
}  // namespace ijvm
