// The obs tracing subsystem (src/obs): per-thread seqlock rings, latency
// histograms and the Chrome trace-event exporter.
//
// What is worth testing here and why:
//   * wrap semantics -- the ring must lose the *oldest* events, never the
//     newest (the newest are what an administrator wants after an incident);
//   * concurrent emitters -- emission is lock-free by design; TSan runs
//     this file in CI, so racy slot publishing would be caught here;
//   * begin/end balancing -- a thread can unwind without reaching its End
//     site (isolate terminated mid-span); the exporter owns the invariant
//     that the JSON always balances, so that is asserted on real output
//     through a real (minimal) JSON parser, not on internal state;
//   * histogram bucketing -- percentile math over the log buckets is easy
//     to get off-by-one-bucket wrong.
//
// Every test that records events starts from resetTrace(): the trace
// registry is process-wide and gtest runs all cases in one process.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"

namespace ijvm {
namespace {

using obs::Ev;
using obs::Lat;
using obs::Ph;
using obs::TraceEvent;

// ---- minimal JSON parser (round-trip checks parse real exporter output) --

struct JValue {
  enum Kind { Null, Bool, Num, Str, Arr, Obj } kind = Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JValue> arr;
  std::map<std::string, JValue> obj;

  const JValue* find(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : s_(std::move(text)) {}

  bool parse(JValue* out) { return value(out) && (skipWs(), pos_ == s_.size()); }

 private:
  void skipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            out->push_back('?');  // control chars: presence is enough
            pos_ += 4;
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return pos_ < s_.size() && s_[pos_++] == '"';
  }
  bool value(JValue* out) {
    skipWs();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JValue::Obj;
      skipWs();
      if (consume('}')) return true;
      for (;;) {
        std::string key;
        if (!string(&key) || !consume(':')) return false;
        JValue v;
        if (!value(&v)) return false;
        out->obj.emplace(std::move(key), std::move(v));
        if (consume(',')) continue;
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JValue::Arr;
      skipWs();
      if (consume(']')) return true;
      for (;;) {
        JValue v;
        if (!value(&v)) return false;
        out->arr.push_back(std::move(v));
        if (consume(',')) continue;
        return consume(']');
      }
    }
    if (c == '"') {
      out->kind = JValue::Str;
      return string(&out->str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out->kind = JValue::Bool;
      out->b = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->kind = JValue::Bool;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      out->kind = JValue::Null;
      pos_ += 4;
      return true;
    }
    // number
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JValue::Num;
    out->num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string s_;
  size_t pos_ = 0;
};

std::string readFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

JValue dumpAndParse(const std::string& path) {
  EXPECT_TRUE(obs::dumpChromeTrace(path));
  JValue root;
  JsonParser p(readFile(path));
  EXPECT_TRUE(p.parse(&root)) << "exporter wrote unparsable JSON";
  std::remove(path.c_str());
  return root;
}

// Events of the dump, metadata rows excluded. (Unused when the tracing
// subsystem is compiled out and only the well-formedness test runs.)
[[maybe_unused]] std::vector<const JValue*> dataEvents(const JValue& root) {
  std::vector<const JValue*> out;
  const JValue* evs = root.find("traceEvents");
  EXPECT_NE(evs, nullptr);
  if (evs == nullptr) return out;
  for (const JValue& e : evs->arr) {
    const JValue* ph = e.find("ph");
    if (ph != nullptr && ph->str != "M") out.push_back(&e);
  }
  return out;
}

// In all builds: the exporter always produces a well-formed, loadable file.
TEST(TraceExportTest, EmptyTraceIsWellFormed) {
  obs::resetTrace();
  JValue root = dumpAndParse("trace_empty.json");
  ASSERT_EQ(root.kind, JValue::Obj);
  const JValue* evs = root.find("traceEvents");
  ASSERT_NE(evs, nullptr);
  EXPECT_EQ(evs->kind, JValue::Arr);
  const JValue* unit = root.find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->str, "ms");
}

#ifndef IJVM_DISABLE_TRACE

TEST(TraceRingTest, WrapKeepsTheNewestEvents) {
  obs::resetTrace();
  obs::setTraceRingCapacity(64);
  // The capacity applies to rings created after the call; the reset above
  // retired this thread's old ring, so the first emit below creates a
  // 64-slot one.
  constexpr u64 kEmits = 500;
  for (u64 i = 1; i <= kEmits; ++i) {
    obs::emit(Ev::GovernorTick, Ph::Instant, -1, i);
  }
  std::vector<TraceEvent> got = obs::snapshotTrace();
  obs::setTraceRingCapacity(8192);  // restore for later tests

  ASSERT_LE(got.size(), 64u);
  ASSERT_GE(got.size(), 1u);
  u64 min_a = ~0ull, max_a = 0;
  for (const TraceEvent& e : got) {
    EXPECT_EQ(e.ev, Ev::GovernorTick);
    min_a = std::min(min_a, e.a);
    max_a = std::max(max_a, e.a);
  }
  // The newest event always survives; everything retained is from the
  // final window of the stream.
  EXPECT_EQ(max_a, kEmits);
  EXPECT_GT(min_a, kEmits - 64);
}

TEST(TraceRingTest, ConcurrentEmittersProduceWellFormedMerge) {
  obs::resetTrace();
  constexpr int kThreads = 4;
  constexpr u64 kPerThread = 5000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (u64 i = 1; i <= kPerThread; ++i) {
        obs::emit(Ev::ChannelSend, Ph::Instant, t, i);
        obs::recordLatency(Lat::ChannelSend, i);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Read concurrently with the writers: torn slots must be skipped, never
  // surfaced as garbage (this is the TSan-sensitive path).
  for (int i = 0; i < 20; ++i) {
    for (const TraceEvent& e : obs::snapshotTrace()) {
      ASSERT_LT(static_cast<u8>(e.ev), static_cast<u8>(Ev::Count));
      ASSERT_NE(e.ev, Ev::None);
    }
  }
  for (auto& th : threads) th.join();

  std::vector<TraceEvent> got = obs::snapshotTrace();
  // Merged snapshot is timestamp-sorted and every surviving event is
  // intact (payload within the range some thread actually wrote).
  u64 prev_ts = 0;
  for (const TraceEvent& e : got) {
    EXPECT_GE(e.ts_ns, prev_ts);
    prev_ts = e.ts_ns;
    EXPECT_EQ(e.ev, Ev::ChannelSend);
    EXPECT_GE(e.a, 1u);
    EXPECT_LE(e.a, kPerThread);
    EXPECT_LT(e.isolate, kThreads);
  }
  EXPECT_EQ(obs::latencySnapshot(Lat::ChannelSend).count,
            static_cast<u64>(kThreads) * kPerThread);
}

TEST(TraceHistogramTest, LogBucketsAndPercentiles) {
  obs::LatencyHistogram h;
  // 90 fast samples (~100 ns) + 10 slow ones (1 ms): p50/p90 must land in
  // the fast bucket, p99 in the slow one, max is exact.
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(1000000);
  obs::HistSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum_ns, 90u * 100 + 10u * 1000000);
  EXPECT_EQ(s.max_ns, 1000000u);
  // 100 falls in bucket [64, 128): reported as its geometric midpoint.
  EXPECT_GE(s.p50_ns, 64u);
  EXPECT_LT(s.p50_ns, 128u);
  EXPECT_GE(s.p90_ns, 64u);
  EXPECT_LT(s.p90_ns, 128u);
  // 1e6 falls in bucket [2^19, 2^20).
  EXPECT_GE(s.p99_ns, 1u << 19);
  EXPECT_LT(s.p99_ns, 1u << 20);

  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(TraceHistogramTest, SpanFeedsHistogram) {
  obs::resetTrace();
  { obs::TraceSpan span(Ev::GcPause, 1, 0, Lat::GcPause); }
  obs::HistSnapshot s = obs::latencySnapshot(Lat::GcPause);
  EXPECT_EQ(s.count, 1u);
}

TEST(TraceExportTest, ChromeJsonRoundTrips) {
  obs::resetTrace();
  const u32 name = obs::internTraceName("hog/Main.grab");
  obs::setTraceThreadName("test-main");
  obs::emit(Ev::CompileRequest, Ph::Instant, 2, name);
  {
    obs::TraceSpan build(Ev::CompileBuild, 2, name, Lat::CompileBuild);
  }
  obs::emit(Ev::CompileInstall, Ph::Instant, 2, name, 4096);
  obs::emit(Ev::JitReclaim, Ph::Instant, -1, 3);

  JValue root = dumpAndParse("trace_roundtrip.json");
  std::vector<const JValue*> evs = dataEvents(root);
  ASSERT_EQ(evs.size(), 5u);  // request + B/E build + install + reclaim

  bool saw_request = false, saw_build_b = false, saw_build_e = false,
       saw_reclaim = false;
  for (const JValue* e : evs) {
    const JValue* nm = e->find("name");
    const JValue* ph = e->find("ph");
    const JValue* args = e->find("args");
    ASSERT_NE(nm, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(args, nullptr);
    ASSERT_NE(e->find("ts"), nullptr);
    ASSERT_NE(e->find("tid"), nullptr);
    if (nm->str == "compile.request") {
      saw_request = true;
      // Interned payloads come back as the original string...
      const JValue* target = args->find("target");
      ASSERT_NE(target, nullptr);
      EXPECT_EQ(target->str, "hog/Main.grab");
      EXPECT_EQ(args->find("isolate")->num, 2);
    }
    if (nm->str == "compile.build" && ph->str == "B") saw_build_b = true;
    if (nm->str == "compile.build" && ph->str == "E") saw_build_e = true;
    if (nm->str == "jit.reclaim") {
      saw_reclaim = true;
      // ...while numeric payloads stay numbers even though `3` is also a
      // plausible name id (the exporter resolves names per event type).
      EXPECT_EQ(args->find("target"), nullptr);
      ASSERT_NE(args->find("a"), nullptr);
      EXPECT_EQ(args->find("a")->num, 3);
    }
  }
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_build_b);
  EXPECT_TRUE(saw_build_e);
  EXPECT_TRUE(saw_reclaim);

  // Thread-name metadata row made it out.
  bool saw_meta = false;
  for (const JValue& e : root.find("traceEvents")->arr) {
    const JValue* ph = e.find("ph");
    if (ph != nullptr && ph->str == "M" &&
        e.find("args")->find("name")->str == "test-main") {
      saw_meta = true;
    }
  }
  EXPECT_TRUE(saw_meta);
}

// An isolate killed mid-span unwinds its spanning thread without reaching
// the End site; a wrapped ring can also eat a Begin or an End. Whatever
// the cause, the exported JSON must balance: Perfetto rejects unbalanced
// B/E pairs outright.
TEST(TraceExportTest, UnbalancedSpansAreClosedAtExport) {
  obs::resetTrace();
  obs::emit(Ev::IsolateTerminate, Ph::Begin, 3);
  obs::emit(Ev::GcPause, Ph::Begin, 3);
  // Thread "dies" here: neither span ever emits its End. And one orphan
  // End whose Begin is long gone:
  obs::emit(Ev::GcMark, Ph::End, 3);

  JValue root = dumpAndParse("trace_balance.json");
  std::map<double, int> depth;  // tid -> open spans
  int begins = 0, ends = 0;
  for (const JValue* e : dataEvents(root)) {
    const std::string& ph = e->find("ph")->str;
    const double tid = e->find("tid")->num;
    if (ph == "B") {
      ++begins;
      ++depth[tid];
    } else if (ph == "E") {
      ++ends;
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "E with no open B";
    }
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);  // both synthesized; the orphan GcMark End dropped
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
}

TEST(TraceControlTest, DisableStopsRecording) {
  obs::resetTrace();
  obs::setTraceEnabled(false);
  obs::emit(Ev::GovernorTick, Ph::Instant, -1, 1);
  obs::recordLatency(Lat::GcPause, 1000);
  EXPECT_TRUE(obs::snapshotTrace().empty());
  EXPECT_EQ(obs::latencySnapshot(Lat::GcPause).count, 0u);
  obs::setTraceEnabled(true);
  obs::emit(Ev::GovernorTick, Ph::Instant, -1, 2);
  EXPECT_EQ(obs::snapshotTrace().size(), 1u);
}

TEST(TraceControlTest, ResetForgetsEventsNamesAndHistograms) {
  obs::resetTrace();
  const u32 id = obs::internTraceName("some/Method.name");
  obs::emit(Ev::CompileRequest, Ph::Instant, 1, id);
  obs::recordLatency(Lat::CompileBuild, 500);
  ASSERT_FALSE(obs::snapshotTrace().empty());

  obs::resetTrace();
  EXPECT_TRUE(obs::snapshotTrace().empty());
  EXPECT_EQ(obs::latencySnapshot(Lat::CompileBuild).count, 0u);
  EXPECT_EQ(obs::traceNameOf(id), "");
  // The retired ring's owner (this thread) keeps emitting safely and gets
  // a fresh ring.
  obs::emit(Ev::GovernorTick, Ph::Instant, -1, 7);
  std::vector<TraceEvent> got = obs::snapshotTrace();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].a, 7u);
}

#endif  // IJVM_DISABLE_TRACE

}  // namespace
}  // namespace ijvm
