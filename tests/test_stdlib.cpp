// System-library natives: StringBuilder, collections, Connection I/O with
// per-isolate accounting, Math, Integer, System, permission checks.
#include <gtest/gtest.h>

#include "bytecode/builder.h"
#include "heap/object.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"

namespace ijvm {
namespace {

struct StdlibFixture : ::testing::Test {
  void SetUp() override {
    vm = std::make_unique<VM>();
    installSystemLibrary(*vm);
    app = vm->registry().newLoader("app");
    iso = vm->createIsolate(app, "app");
  }
  void TearDown() override { vm.reset(); }

  Value run(ClassBuilder& cb, const std::string& method, const std::string& desc,
            std::vector<Value> args = {}) {
    std::string cls = cb.name();
    app->define(cb.build());
    JThread* t = vm->mainThread();
    Value r = vm->callStaticIn(t, app, cls, method, desc, std::move(args));
    last_error = t->pending_exception != nullptr ? vm->pendingMessage(t) : "";
    vm->clearPending(t);
    return r;
  }

  std::unique_ptr<VM> vm;
  ClassLoader* app = nullptr;
  Isolate* iso = nullptr;
  std::string last_error;
};

TEST_F(StdlibFixture, StringBuilderBuildsText) {
  ClassBuilder cb("sl/Sb");
  auto& m = cb.method("f", "()Ljava/lang/String;", ACC_PUBLIC | ACC_STATIC);
  m.newDefault("java/lang/StringBuilder");
  m.ldcStr("n=").invokevirtual("java/lang/StringBuilder", "append",
                               "(Ljava/lang/String;)Ljava/lang/StringBuilder;");
  m.iconst(42).invokevirtual("java/lang/StringBuilder", "appendInt",
                             "(I)Ljava/lang/StringBuilder;");
  m.iconst('!').invokevirtual("java/lang/StringBuilder", "appendChar",
                              "(I)Ljava/lang/StringBuilder;");
  m.invokevirtual("java/lang/StringBuilder", "toString", "()Ljava/lang/String;");
  m.areturn();
  Value r = run(cb, "f", "()Ljava/lang/String;");
  ASSERT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(VM::stringValue(r.asRef()), "n=42!");
}

TEST_F(StdlibFixture, ArrayListAddGetSetSizeRemove) {
  ClassBuilder cb("sl/List");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.newDefault("java/util/ArrayList").astore(0);
  for (int i = 0; i < 3; ++i) {
    m.aload(0).ldcStr("item" + std::to_string(i));
    m.invokevirtual("java/util/ArrayList", "add", "(Ljava/lang/Object;)I").pop();
  }
  // replace element 1, then size*100 + length(get(1))
  m.aload(0).iconst(1).ldcStr("XY");
  m.invokevirtual("java/util/ArrayList", "set",
                  "(ILjava/lang/Object;)Ljava/lang/Object;").pop();
  m.aload(0).invokevirtual("java/util/ArrayList", "removeLast",
                           "()Ljava/lang/Object;").pop();
  m.aload(0).invokevirtual("java/util/ArrayList", "size", "()I").iconst(100).imul();
  m.aload(0).iconst(1).invokevirtual("java/util/ArrayList", "get",
                                     "(I)Ljava/lang/Object;");
  m.checkcast("java/lang/String");
  m.invokevirtual("java/lang/String", "length", "()I");
  m.iadd().ireturn();
  Value r = run(cb, "f", "()I");
  ASSERT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), 202);  // size 2 * 100 + "XY".length()
}

TEST_F(StdlibFixture, HashMapPutGetRemove) {
  ClassBuilder cb("sl/Map");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.newDefault("java/util/HashMap").astore(0);
  m.aload(0).ldcStr("k1").ldcStr("value-one");
  m.invokevirtual("java/util/HashMap", "put",
                  "(Ljava/lang/String;Ljava/lang/Object;)Ljava/lang/Object;").pop();
  m.aload(0).ldcStr("k2").ldcStr("v2");
  m.invokevirtual("java/util/HashMap", "put",
                  "(Ljava/lang/String;Ljava/lang/Object;)Ljava/lang/Object;").pop();
  Label missing = m.newLabel();
  m.aload(0).ldcStr("k1");
  m.invokevirtual("java/util/HashMap", "get",
                  "(Ljava/lang/String;)Ljava/lang/Object;");
  m.dup().ifNull(missing);
  m.checkcast("java/lang/String").invokevirtual("java/lang/String", "length", "()I");
  m.aload(0).ldcStr("k2").invokevirtual("java/util/HashMap", "remove",
                                        "(Ljava/lang/String;)Ljava/lang/Object;");
  m.pop();
  m.aload(0).invokevirtual("java/util/HashMap", "size", "()I");
  m.iconst(100).imul().iadd().ireturn();
  m.bind(missing).pop().iconst(-1).ireturn();
  Value r = run(cb, "f", "()I");
  ASSERT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), 109);  // "value-one".length()=9 + size 1 * 100
}

TEST_F(StdlibFixture, ConnectionIoChargesTheCurrentIsolate) {
  ClassBuilder cb("sl/Io");
  auto& m = cb.method("f", "()Ljava/lang/String;", ACC_PUBLIC | ACC_STATIC);
  m.ldcStr("loop").invokestatic("java/io/Connection", "open",
                                "(Ljava/lang/String;)Ljava/io/Connection;");
  m.astore(0);
  m.aload(0).ldcStr("ping-pong!");
  m.invokevirtual("java/io/Connection", "writeString", "(Ljava/lang/String;)V");
  m.aload(0).iconst(10);
  m.invokevirtual("java/io/Connection", "readString", "(I)Ljava/lang/String;");
  m.areturn();
  Value r = run(cb, "f", "()Ljava/lang/String;");
  ASSERT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(VM::stringValue(r.asRef()), "ping-pong!");
  // JRes-style accounting (paper 3.2): bytes charged to the caller.
  EXPECT_EQ(iso->stats.io_bytes_written.load(), 10u);
  EXPECT_EQ(iso->stats.io_bytes_read.load(), 10u);
  EXPECT_EQ(iso->stats.connections_opened.load(), 1u);
}

TEST_F(StdlibFixture, MathNatives) {
  ClassBuilder cb("sl/Math");
  auto& m = cb.method("f", "(D)D", ACC_PUBLIC | ACC_STATIC);
  m.dload(0).invokestatic("java/lang/Math", "sqrt", "(D)D");
  m.dconst(2.0).invokestatic("java/lang/Math", "pow", "(DD)D").dreturn();
  Value r = run(cb, "f", "(D)D", {Value::ofDouble(49.0)});
  ASSERT_TRUE(last_error.empty()) << last_error;
  EXPECT_DOUBLE_EQ(r.asDouble(), 49.0);  // sqrt(49)^2
}

TEST_F(StdlibFixture, IntegerParseAndToString) {
  ClassBuilder cb("sl/Int");
  auto& m = cb.method("f", "(I)I", ACC_PUBLIC | ACC_STATIC);
  m.iload(0).invokestatic("java/lang/Integer", "toString",
                          "(I)Ljava/lang/String;");
  m.invokestatic("java/lang/Integer", "parseInt", "(Ljava/lang/String;)I");
  m.ireturn();
  Value r = run(cb, "f", "(I)I", {Value::ofInt(-123456)});
  ASSERT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), -123456);
}

TEST_F(StdlibFixture, ParseIntRejectsGarbage) {
  ClassBuilder cb("sl/Bad");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
  m.bind(from);
  m.ldcStr("12x4").invokestatic("java/lang/Integer", "parseInt",
                                "(Ljava/lang/String;)I");
  m.bind(to).ireturn();
  m.bind(handler).pop().iconst(-1).ireturn();
  m.handler(from, to, handler, "java/lang/NumberFormatException");
  Value r = run(cb, "f", "()I");
  ASSERT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), -1);
}

TEST_F(StdlibFixture, ArraycopyMovesElementsAndChecksBounds) {
  ClassBuilder cb("sl/Copy");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.iconst(5).newarray(Kind::Int).astore(0);
  for (int i = 0; i < 5; ++i) {
    m.aload(0).iconst(i).iconst(i * 10).iastore();
  }
  m.iconst(5).newarray(Kind::Int).astore(1);
  m.aload(0).iconst(1).aload(1).iconst(0).iconst(3);
  m.invokestatic("java/lang/System", "arraycopy",
                 "(Ljava/lang/Object;ILjava/lang/Object;II)V");
  m.aload(1).iconst(2).iaload().ireturn();  // src[3] == 30
  Value r = run(cb, "f", "()I");
  ASSERT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), 30);
}

TEST_F(StdlibFixture, ArraycopyRejectsKindMismatch) {
  ClassBuilder cb("sl/Copy2");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
  m.bind(from);
  m.iconst(2).newarray(Kind::Int).astore(0);
  m.iconst(2).newarray(Kind::Double).astore(1);
  m.aload(0).iconst(0).aload(1).iconst(0).iconst(1);
  m.invokestatic("java/lang/System", "arraycopy",
                 "(Ljava/lang/Object;ILjava/lang/Object;II)V");
  m.bind(to).iconst(0).ireturn();
  m.bind(handler).pop().iconst(1).ireturn();
  m.handler(from, to, handler, "java/lang/ArrayStoreException");
  Value r = run(cb, "f", "()I");
  EXPECT_EQ(r.asInt(), 1);
}

TEST_F(StdlibFixture, SystemExitDeniedToUnprivilegedIsolates) {
  // Rule 2 (paper 3.4): a bundle must not be able to shut down the JVM.
  // We need a second (standard) isolate because the first one is Isolate0.
  ClassLoader* bundle = vm->registry().newLoader("bundle");
  Isolate* biso = vm->createIsolate(bundle, "bundle");
  ASSERT_FALSE(biso->privileged);
  ClassBuilder cb("sl/Exit");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
  m.bind(from);
  m.iconst(0).invokestatic("java/lang/System", "exit", "(I)V");
  m.bind(to).iconst(0).ireturn();
  m.bind(handler).pop().iconst(1).ireturn();
  m.handler(from, to, handler, "java/lang/SecurityException");
  bundle->define(cb.build());
  JThread* t = vm->mainThread();
  Value r = vm->callStaticIn(t, bundle, "sl/Exit", "f", "()I", {});
  ASSERT_EQ(t->pending_exception, nullptr) << vm->pendingMessage(t);
  EXPECT_EQ(r.asInt(), 1);  // denied
}

TEST_F(StdlibFixture, ObjectIdentityHashAndEquals) {
  ClassBuilder cb("sl/Obj");
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  m.newDefault("java/lang/Object").astore(0);
  // o.equals(o) + (o.equals(new Object()) * 10)
  m.aload(0).aload(0)
      .invokevirtual("java/lang/Object", "equals", "(Ljava/lang/Object;)I");
  m.aload(0).newDefault("java/lang/Object")
      .invokevirtual("java/lang/Object", "equals", "(Ljava/lang/Object;)I");
  m.iconst(10).imul().iadd().ireturn();
  Value r = run(cb, "f", "()I");
  EXPECT_EQ(r.asInt(), 1);
}

TEST_F(StdlibFixture, GetClassNameRoundTrips) {
  ClassBuilder cb("sl/Cls");
  auto& m = cb.method("f", "()Ljava/lang/String;", ACC_PUBLIC | ACC_STATIC);
  m.newDefault("java/lang/Object");
  m.invokevirtual("java/lang/Object", "getClass", "()Ljava/lang/Class;");
  m.invokevirtual("java/lang/Class", "getName", "()Ljava/lang/String;");
  m.areturn();
  Value r = run(cb, "f", "()Ljava/lang/String;");
  ASSERT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(VM::stringValue(r.asRef()), "java/lang/Object");
}

}  // namespace
}  // namespace ijvm
