// SPEC-analog workloads: determinism, mode-independence (isolated vs shared
// must compute identical checksums -- same bytecode, different VM), and
// agreement with independent C++ reference implementations.
#include <gtest/gtest.h>

#include "stdlib/system_library.h"
#include "workloads/spec.h"

namespace ijvm {
namespace {

i32 runInMode(const SpecWorkload& wl, bool isolation, i32 size) {
  VmOptions opts = isolation ? VmOptions::isolated() : VmOptions::shared();
  VM vm(opts);
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("spec");
  vm.createIsolate(app, "spec");
  return runSpecWorkload(vm, vm.mainThread(), app, wl, size);
}

class SpecModeParity : public ::testing::TestWithParam<int> {};

TEST_P(SpecModeParity, IsolatedAndSharedComputeTheSameChecksum) {
  SpecWorkload wl = specWorkloads()[static_cast<size_t>(GetParam())];
  // Small sizes keep the suite fast; benches use default_size.
  i32 size = std::max(1, wl.default_size / 8);
  i32 isolated = runInMode(wl, true, size);
  i32 shared = runInMode(wl, false, size);
  EXPECT_EQ(isolated, shared) << wl.name;
  // Re-running in the same mode is deterministic too.
  EXPECT_EQ(runInMode(wl, true, size), isolated) << wl.name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SpecModeParity, ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return specWorkloads()[static_cast<size_t>(info.param)]
                               .name;
                         });

TEST(SpecReference, CompressMatchesCppReference) {
  SpecWorkload wl = makeCompress();
  for (i32 size : {1, 2, 8}) {
    EXPECT_EQ(runInMode(wl, true, size), referenceCompress(size)) << size;
  }
}

TEST(SpecReference, DbMatchesCppReference) {
  SpecWorkload wl = makeDb();
  for (i32 ops : {10, 100, 500}) {
    EXPECT_EQ(runInMode(wl, true, ops), referenceDb(ops)) << ops;
  }
}

TEST(SpecReference, MtrtUsesTwoThreads) {
  VM vm;
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("spec");
  Isolate* iso = vm.createIsolate(app, "spec");
  const u64 before = iso->stats.threads_created.load();
  runSpecWorkload(vm, vm.mainThread(), app, makeMtrt(), 256);
  EXPECT_GE(iso->stats.threads_created.load() - before, 2u);
}

}  // namespace
}  // namespace ijvm
