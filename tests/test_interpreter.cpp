// Interpreter semantics: arithmetic, control flow, arrays, fields, objects,
// exceptions, monitors -- unit level, one behaviour per test.
#include <gtest/gtest.h>

#include <limits>

#include "bytecode/builder.h"
#include "heap/object.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"

namespace ijvm {
namespace {

struct InterpFixture : ::testing::Test {
  void SetUp() override {
    vm = std::make_unique<VM>();
    installSystemLibrary(*vm);
    app = vm->registry().newLoader("app");
    vm->createIsolate(app, "app");
  }
  void TearDown() override { vm.reset(); }

  Value run(ClassBuilder& cb, const std::string& method, const std::string& desc,
            std::vector<Value> args) {
    app->define(cb.build());
    return runDefined(cb.name(), method, desc, std::move(args));
  }
  Value runDefined(const std::string& cls, const std::string& method,
                   const std::string& desc, std::vector<Value> args) {
    JThread* t = vm->mainThread();
    Value r = vm->callStaticIn(t, app, cls, method, desc, std::move(args));
    last_error = t->pending_exception != nullptr ? vm->pendingMessage(t) : "";
    vm->clearPending(t);
    return r;
  }

  std::unique_ptr<VM> vm;
  ClassLoader* app = nullptr;
  std::string last_error;
  int class_counter = 0;

  // Convenience: build a one-method class and run it.
  Value eval(const std::string& desc, std::vector<Value> args,
             const std::function<void(MethodBuilder&)>& body) {
    ClassBuilder cb("t/C" + std::to_string(class_counter++));
    auto& m = cb.method("f", desc, ACC_PUBLIC | ACC_STATIC);
    body(m);
    return run(cb, "f", desc, std::move(args));
  }
};

TEST_F(InterpFixture, IntArithmeticWraps) {
  Value r = eval("(II)I", {Value::ofInt(std::numeric_limits<i32>::max()),
                           Value::ofInt(1)},
                 [](MethodBuilder& m) { m.iload(0).iload(1).iadd().ireturn(); });
  EXPECT_EQ(r.asInt(), std::numeric_limits<i32>::min());
}

TEST_F(InterpFixture, IntDivisionTruncatesTowardZero) {
  Value r = eval("(II)I", {Value::ofInt(-7), Value::ofInt(2)},
                 [](MethodBuilder& m) { m.iload(0).iload(1).idiv().ireturn(); });
  EXPECT_EQ(r.asInt(), -3);
}

TEST_F(InterpFixture, IntMinDividedByMinusOneDoesNotTrap) {
  Value r = eval("(II)I",
                 {Value::ofInt(std::numeric_limits<i32>::min()), Value::ofInt(-1)},
                 [](MethodBuilder& m) { m.iload(0).iload(1).idiv().ireturn(); });
  EXPECT_EQ(r.asInt(), std::numeric_limits<i32>::min());
}

TEST_F(InterpFixture, DivisionByZeroThrowsArithmeticException) {
  eval("(II)I", {Value::ofInt(1), Value::ofInt(0)},
       [](MethodBuilder& m) { m.iload(0).iload(1).idiv().ireturn(); });
  EXPECT_NE(last_error.find("ArithmeticException"), std::string::npos);
}

TEST_F(InterpFixture, ShiftsMaskTheirAmount) {
  Value r = eval("(II)I", {Value::ofInt(1), Value::ofInt(33)},
                 [](MethodBuilder& m) { m.iload(0).iload(1).ishl().ireturn(); });
  EXPECT_EQ(r.asInt(), 2);  // 33 & 31 == 1
}

TEST_F(InterpFixture, UnsignedShiftRight) {
  Value r = eval("(II)I", {Value::ofInt(-1), Value::ofInt(28)},
                 [](MethodBuilder& m) { m.iload(0).iload(1).iushr().ireturn(); });
  EXPECT_EQ(r.asInt(), 15);
}

TEST_F(InterpFixture, LongArithmeticAndComparison) {
  Value r = eval("(JJ)I", {Value::ofLong(1ll << 40), Value::ofLong(1ll << 39)},
                 [](MethodBuilder& m) { m.lload(0).lload(1).lcmp().ireturn(); });
  EXPECT_EQ(r.asInt(), 1);
}

TEST_F(InterpFixture, LongMultiplicationWraps) {
  Value r = eval("(JJ)J", {Value::ofLong(std::numeric_limits<i64>::max()),
                           Value::ofLong(2)},
                 [](MethodBuilder& m) { m.lload(0).lload(1).lmul().lreturn(); });
  EXPECT_EQ(r.asLong(), -2);
}

TEST_F(InterpFixture, DoubleComparisonNaNSemantics) {
  double nan = std::numeric_limits<double>::quiet_NaN();
  Value less = eval("(DD)I", {Value::ofDouble(nan), Value::ofDouble(1.0)},
                    [](MethodBuilder& m) {
                      m.dload(0).dload(1).dcmpl().ireturn();
                    });
  EXPECT_EQ(less.asInt(), -1);
  Value greater = eval("(DD)I", {Value::ofDouble(nan), Value::ofDouble(1.0)},
                       [](MethodBuilder& m) {
                         m.dload(0).dload(1).dcmpg().ireturn();
                       });
  EXPECT_EQ(greater.asInt(), 1);
}

TEST_F(InterpFixture, D2ISaturates) {
  Value r = eval("(D)I", {Value::ofDouble(1e300)},
                 [](MethodBuilder& m) { m.dload(0).d2i().ireturn(); });
  EXPECT_EQ(r.asInt(), std::numeric_limits<i32>::max());
  Value nan = eval("(D)I", {Value::ofDouble(std::numeric_limits<double>::quiet_NaN())},
                   [](MethodBuilder& m) { m.dload(0).d2i().ireturn(); });
  EXPECT_EQ(nan.asInt(), 0);
}

TEST_F(InterpFixture, ConversionsRoundTrip) {
  Value r = eval("(I)I", {Value::ofInt(-42)}, [](MethodBuilder& m) {
    m.iload(0).i2d().d2l().l2i().ireturn();
  });
  EXPECT_EQ(r.asInt(), -42);
}

TEST_F(InterpFixture, StackManipulation) {
  // dup_x1: a b -> b a b;  swap: a b -> b a
  Value r = eval("(II)I", {Value::ofInt(3), Value::ofInt(10)},
                 [](MethodBuilder& m) {
                   // compute b - a via swap
                   m.iload(0).iload(1).swap().isub().ireturn();  // 10 - 3
                 });
  EXPECT_EQ(r.asInt(), 7);
}

TEST_F(InterpFixture, ArraysStoreAndLoadEachKind) {
  Value r = eval("()D", {}, [](MethodBuilder& m) {
    m.iconst(4).newarray(Kind::Double).astore(0);
    m.aload(0).iconst(2).dconst(2.75).dastore();
    m.aload(0).iconst(2).daload().dreturn();
  });
  EXPECT_DOUBLE_EQ(r.asDouble(), 2.75);
}

TEST_F(InterpFixture, ArrayIndexOutOfBounds) {
  eval("()I", {}, [](MethodBuilder& m) {
    m.iconst(2).newarray(Kind::Int).astore(0);
    m.aload(0).iconst(5).iaload().ireturn();
  });
  EXPECT_NE(last_error.find("ArrayIndexOutOfBounds"), std::string::npos);
}

TEST_F(InterpFixture, NegativeArraySize) {
  eval("()I", {}, [](MethodBuilder& m) {
    m.iconst(-3).newarray(Kind::Int).arraylength().ireturn();
  });
  EXPECT_NE(last_error.find("NegativeArraySize"), std::string::npos);
}

TEST_F(InterpFixture, NullPointerOnFieldAccess) {
  ClassBuilder holder("t/Holder");
  holder.field("x", "I");
  app->define(holder.build());
  eval("()I", {}, [](MethodBuilder& m) {
    m.aconstNull().getfield("t/Holder", "x", "I").ireturn();
  });
  EXPECT_NE(last_error.find("NullPointerException"), std::string::npos);
}

TEST_F(InterpFixture, InstanceFieldsAndVirtualDispatch) {
  {
    ClassBuilder base("t/Base");
    base.field("v", "I");
    auto& get = base.method("get", "()I");
    get.aload(0).getfield("t/Base", "v", "I").ireturn();
    app->define(base.build());
  }
  {
    ClassBuilder derived("t/Derived", "t/Base");
    auto& get = derived.method("get", "()I");
    get.aload(0).getfield("t/Base", "v", "I").iconst(100).iadd().ireturn();
    app->define(derived.build());
  }
  Value r = eval("()I", {}, [](MethodBuilder& m) {
    m.newDefault("t/Derived").astore(0);
    m.aload(0).iconst(5).putfield("t/Base", "v", "I");
    m.aload(0).invokevirtual("t/Base", "get", "()I").ireturn();
  });
  EXPECT_EQ(r.asInt(), 105);  // Derived::get dispatched through Base ref
}

TEST_F(InterpFixture, CheckcastAndInstanceof) {
  {
    ClassBuilder a("t/A");
    app->define(a.build());
  }
  {
    ClassBuilder b("t/B", "t/A");
    app->define(b.build());
  }
  Value ok = eval("()I", {}, [](MethodBuilder& m) {
    m.newDefault("t/B").checkcast("t/A").instanceOf("t/B").ireturn();
  });
  EXPECT_EQ(ok.asInt(), 1);

  eval("()I", {}, [](MethodBuilder& m) {
    m.newDefault("t/A").checkcast("t/B").instanceOf("t/B").ireturn();
  });
  EXPECT_NE(last_error.find("ClassCastException"), std::string::npos);
}

TEST_F(InterpFixture, InstanceofNullIsFalseAndCheckcastNullPasses) {
  Value r = eval("()I", {}, [](MethodBuilder& m) {
    m.aconstNull().checkcast("java/lang/String").instanceOf("java/lang/String");
    m.ireturn();
  });
  EXPECT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), 0);
}

TEST_F(InterpFixture, ArrayStoreExceptionOnBadElement) {
  {
    ClassBuilder a("t/A");
    app->define(a.build());
  }
  {
    ClassBuilder b("t/B");  // unrelated to A
    app->define(b.build());
  }
  eval("()I", {}, [](MethodBuilder& m) {
    m.iconst(1).anewarray("t/A").astore(0);
    m.aload(0).iconst(0).newDefault("t/B").aastore();
    m.iconst(1).ireturn();
  });
  EXPECT_NE(last_error.find("ArrayStoreException"), std::string::npos);
}

TEST_F(InterpFixture, ExceptionHandlerCatchesSubclasses) {
  Value r = eval("()I", {}, [](MethodBuilder& m) {
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    m.bind(from);
    m.iconst(1).iconst(0).idiv().ireturn();  // ArithmeticException
    m.bind(to);
    m.bind(handler).pop().iconst(99).ireturn();
    m.handler(from, to, handler, "java/lang/RuntimeException");
  });
  EXPECT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), 99);
}

TEST_F(InterpFixture, HandlerDoesNotCatchUnrelatedType) {
  eval("()I", {}, [](MethodBuilder& m) {
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    m.bind(from);
    m.iconst(1).iconst(0).idiv().ireturn();
    m.bind(to);
    m.bind(handler).pop().iconst(99).ireturn();
    m.handler(from, to, handler, "java/lang/InterruptedException");
  });
  EXPECT_NE(last_error.find("ArithmeticException"), std::string::npos);
}

TEST_F(InterpFixture, AthrowPropagatesAcrossFrames) {
  {
    ClassBuilder cb("t/Thrower");
    auto& m = cb.method("boom", "()V", ACC_PUBLIC | ACC_STATIC);
    m.newObject("java/lang/IllegalStateException").dup();
    m.ldcStr("custom message");
    m.invokespecial("java/lang/IllegalStateException", "<init>",
                    "(Ljava/lang/String;)V");
    m.athrow();
    app->define(cb.build());
  }
  Value r = eval("()I", {}, [](MethodBuilder& m) {
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    m.bind(from);
    m.invokestatic("t/Thrower", "boom", "()V");
    m.iconst(0).ireturn();
    m.bind(to);
    m.bind(handler);
    // Return message length to prove we caught the right object.
    m.invokevirtual("java/lang/Throwable", "getMessage",
                    "()Ljava/lang/String;");
    m.invokevirtual("java/lang/String", "length", "()I").ireturn();
    m.handler(from, to, handler, "java/lang/IllegalStateException");
  });
  EXPECT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), 14);  // "custom message"
}

TEST_F(InterpFixture, RecursionComputesFactorial) {
  ClassBuilder cb("t/Fact");
  auto& m = cb.method("fact", "(I)I", ACC_PUBLIC | ACC_STATIC);
  Label base = m.newLabel();
  m.iload(0).iconst(2).ifIcmpLt(base);
  m.iload(0).iload(0).iconst(1).isub();
  m.invokestatic("t/Fact", "fact", "(I)I").imul().ireturn();
  m.bind(base).iconst(1).ireturn();
  Value r = run(cb, "fact", "(I)I", {Value::ofInt(10)});
  EXPECT_EQ(r.asInt(), 3628800);
}

TEST_F(InterpFixture, DeepRecursionThrowsStackOverflowError) {
  ClassBuilder cb("t/Deep");
  auto& m = cb.method("down", "(I)I", ACC_PUBLIC | ACC_STATIC);
  m.iload(0).iconst(1).iadd().invokestatic("t/Deep", "down", "(I)I").ireturn();
  run(cb, "down", "(I)I", {Value::ofInt(0)});
  EXPECT_NE(last_error.find("StackOverflowError"), std::string::npos);
}

TEST_F(InterpFixture, MonitorEnterExitAndIllegalState) {
  Value r = eval("()I", {}, [](MethodBuilder& m) {
    m.newDefault("java/lang/Object").astore(0);
    m.aload(0).monitorenter();
    m.aload(0).monitorexit();
    m.iconst(1).ireturn();
  });
  EXPECT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), 1);

  eval("()I", {}, [](MethodBuilder& m) {
    m.newDefault("java/lang/Object").monitorexit();  // never entered
    m.iconst(0).ireturn();
  });
  EXPECT_NE(last_error.find("IllegalMonitorState"), std::string::npos);
}

TEST_F(InterpFixture, SynchronizedStaticMethodIsReentrant) {
  ClassBuilder cb("t/Sync");
  auto& outer = cb.method("outer", "()I",
                          ACC_PUBLIC | ACC_STATIC | ACC_SYNCHRONIZED);
  outer.invokestatic("t/Sync", "inner", "()I").ireturn();
  auto& inner = cb.method("inner", "()I",
                          ACC_PUBLIC | ACC_STATIC | ACC_SYNCHRONIZED);
  inner.iconst(7).ireturn();
  Value r = run(cb, "outer", "()I", {});
  EXPECT_TRUE(last_error.empty()) << last_error;
  EXPECT_EQ(r.asInt(), 7);  // same Class-object monitor, recursive entry
}

TEST_F(InterpFixture, InterfaceDispatchSelectsImplementation) {
  {
    ClassBuilder itf("t/Speaker", "", ACC_PUBLIC | ACC_INTERFACE);
    itf.abstractMethod("speak", "()I");
    app->define(itf.build());
  }
  {
    ClassBuilder impl("t/Dog");
    impl.addInterface("t/Speaker");
    auto& speak = impl.method("speak", "()I");
    speak.iconst(10).ireturn();
    app->define(impl.build());
  }
  {
    ClassBuilder impl("t/Cat");
    impl.addInterface("t/Speaker");
    auto& speak = impl.method("speak", "()I");
    speak.iconst(20).ireturn();
    app->define(impl.build());
  }
  Value r = eval("()I", {}, [](MethodBuilder& m) {
    m.newDefault("t/Dog").invokeinterface("t/Speaker", "speak", "()I");
    m.newDefault("t/Cat").invokeinterface("t/Speaker", "speak", "()I");
    m.iadd().ireturn();
  });
  EXPECT_EQ(r.asInt(), 30);
}

TEST_F(InterpFixture, ClinitRunsOnceAndBeforeFirstAccess) {
  ClassBuilder cb("t/Init");
  cb.field("v", "I", ACC_PUBLIC | ACC_STATIC);
  cb.field("count", "I", ACC_PUBLIC | ACC_STATIC);
  auto& clinit = cb.method("<clinit>", "()V", ACC_STATIC);
  clinit.getstatic("t/Init", "count", "I").iconst(1).iadd();
  clinit.putstatic("t/Init", "count", "I");
  clinit.iconst(41).putstatic("t/Init", "v", "I");
  clinit.ret();
  auto& get = cb.method("get", "()I", ACC_PUBLIC | ACC_STATIC);
  get.getstatic("t/Init", "v", "I").getstatic("t/Init", "count", "I").iadd();
  get.ireturn();
  app->define(cb.build());

  EXPECT_EQ(runDefined("t/Init", "get", "()I", {}).asInt(), 42);
  EXPECT_EQ(runDefined("t/Init", "get", "()I", {}).asInt(), 42);  // once only
}

TEST_F(InterpFixture, IincAndLoops) {
  Value r = eval("(I)I", {Value::ofInt(5)}, [](MethodBuilder& m) {
    Label loop = m.newLabel(), done = m.newLabel();
    m.iconst(1).istore(1);
    m.bind(loop).iload(0).ifle(done);
    m.iload(1).iconst(3).imul().istore(1);
    m.iinc(0, -1).gotoLabel(loop);
    m.bind(done).iload(1).ireturn();
  });
  EXPECT_EQ(r.asInt(), 243);
}

TEST_F(InterpFixture, DremFollowsFmod) {
  Value r = eval("(DD)D", {Value::ofDouble(7.5), Value::ofDouble(2.0)},
                 [](MethodBuilder& m) { m.dload(0).dload(1).drem().dreturn(); });
  EXPECT_DOUBLE_EQ(r.asDouble(), 1.5);
}

}  // namespace
}  // namespace ijvm
