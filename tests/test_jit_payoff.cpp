// The tier-3 payoff model (src/exec/compile_manager.cpp, docs/jit.md
// "Payoff"): per-method pre/post promotion cost windows, auto-demotion
// when compiled code measures slower than the method's own fused-tier
// baseline, the jit_payoff_max_demotes ineligibility pin, and the
// demoted-floor decay that re-opens promotion once pressure passes.
//
// Determinism: these tests never compare two real timings against each
// other. The slow-compiled-code legs inject a fixed entry delay through
// VmOptions::jit_payoff_test_entry_delay_ns (counted inside the timed
// post window), so "compiled is slower" is true by construction; the
// keep-code legs turn the verdict off (jit_payoff = false) or lower the
// bar (jit_payoff_min_speedup) far below anything noise can cross.
#include <gtest/gtest.h>

#include "bytecode/builder.h"
#include "exec/code_cache.h"
#include "exec/engine.h"
#include "exec/jit.h"
#include "exec/quickened.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"

namespace ijvm {
namespace {

#ifdef IJVM_DISABLE_JIT
#define IJVM_REQUIRE_JIT() GTEST_SKIP() << "built with IJVM_DISABLE_JIT"
#else
#define IJVM_REQUIRE_JIT() (void)0
#endif

// Tuned so the pre window provably fills before promotion: the loop body
// contributes ~51 profile units per call (1 invocation + 50 back-edges),
// pre sampling starts above jit_threshold/2 = 300 (call ~6) and
// promotion lands above 600 (call ~12) -- about six pre samples against
// an evidence floor of jit_payoff_samples/4+1 = 2.
VmOptions payoffOptions() {
  VmOptions opts = VmOptions::isolated();
  opts.exec_engine = ExecEngine::Jit;
  opts.fusion_threshold = 0;
  opts.jit_threshold = 600;
  opts.background_compile = false;  // promotion timing pinned to entries
  opts.jit_payoff = true;
  opts.jit_payoff_samples = 4;
  return opts;
}

struct PayoffVm {
  explicit PayoffVm(VmOptions opts) : vm(opts) {
    installSystemLibrary(vm);
    app = vm.registry().newLoader("app");
    ClassBuilder cb("app/Loop");
    auto& m = cb.method("f", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label head = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(1);
    m.iconst(0).istore(2);
    m.bind(head).iload(2).iload(0).ifIcmpGe(done);
    m.iload(1).iload(2).iadd().istore(1);
    m.iinc(2, 1).gotoLabel(head);
    m.bind(done).iload(1).ireturn();
    app->define(cb.build());
    vm.createIsolate(app, "app");
  }

  int callLoop(int n) {
    Value r = vm.callStaticIn(vm.mainThread(), app, "app/Loop", "f", "(I)I",
                              {Value::ofInt(n)});
    EXPECT_EQ(vm.mainThread()->pending_exception, nullptr)
        << vm.pendingMessage(vm.mainThread());
    return r.asInt();
  }

  JMethod* method() {
    return vm.registry().resolve(app, "app/Loop")->findMethod("f", "(I)I");
  }

  exec::QCode* qcode() {
    return static_cast<exec::QCode*>(method()->qcode.load());
  }

  u64 payoffDemotions() {
    for (const IsolateReport& r : vm.reportAll()) {
      if (r.name == "app") return r.jit_payoff_demotions;
    }
    return 0;
  }

  VM vm;
  ClassLoader* app = nullptr;
};

// The tentpole invariant: compiled code that measures slower than the
// method's own fused baseline is demoted without any outside help, and
// a method that keeps losing is pinned ineligible after
// jit_payoff_max_demotes strikes -- the ladder converges instead of
// oscillating.
TEST(JitPayoff, InjectedSlowdownAutoDemotesThenPinsIneligible) {
  IJVM_REQUIRE_JIT();
  VmOptions opts = payoffOptions();
  // Every compiled entry eats 1ms inside the timed post window; the
  // fused baseline for the 50-iteration loop is microseconds, so the
  // measured speedup is far below jit_payoff_min_speedup on every
  // window, deterministically.
  opts.jit_payoff_test_entry_delay_ns = 1'000'000;
  PayoffVm f(opts);

  bool pinned = false;
  int calls = 0;
  for (; calls < 400 && !pinned; ++calls) {
    ASSERT_EQ(f.callLoop(50), 1225);
    exec::QCode* qc = f.qcode();
    pinned = qc != nullptr && qc->jit_ineligible.load();
  }
  ASSERT_TRUE(pinned) << "payoff model never pinned the losing method "
                         "ineligible (calls=" << calls << ")";
  // Converged: each losing generation was demoted, the cap was reached,
  // and the compiled code is gone for good.
  EXPECT_GE(f.payoffDemotions(), f.vm.options().jit_payoff_max_demotes);
  EXPECT_EQ(exec::jitCodeOf(f.method()), nullptr);
  // Pinned means pinned: hammering the method never re-compiles it.
  for (int i = 0; i < 50; ++i) ASSERT_EQ(f.callLoop(50), 1225);
  EXPECT_EQ(exec::jitCodeOf(f.method()), nullptr);
}

// Negative control for the test seam itself: with the verdict disabled
// the same injected slowdown is measured but never acted on -- proving
// demotion comes from the payoff evaluation, not from the delay or any
// other path.
TEST(JitPayoff, PayoffOffKeepsSlowCompiledCodeInstalled) {
  IJVM_REQUIRE_JIT();
  VmOptions opts = payoffOptions();
  opts.jit_payoff = false;
  opts.jit_payoff_test_entry_delay_ns = 200'000;
  PayoffVm f(opts);
  for (int i = 0; i < 60; ++i) ASSERT_EQ(f.callLoop(50), 1225);
  EXPECT_NE(exec::jitCodeOf(f.method()), nullptr);
  EXPECT_EQ(f.payoffDemotions(), 0u);
  exec::QCode* qc = f.qcode();
  ASSERT_NE(qc, nullptr);
  EXPECT_FALSE(qc->jit_ineligible.load());
}

// Winning code stays. The bar is dropped to 0.25 (compiled would have to
// measure 4x slower than fused to lose) so scheduler noise cannot flip
// the verdict; the windows still run for real.
TEST(JitPayoff, FastCompiledCodeStaysInstalled) {
  IJVM_REQUIRE_JIT();
  VmOptions opts = payoffOptions();
  opts.jit_payoff_min_speedup = 0.25;
  PayoffVm f(opts);
  for (int i = 0; i < 120; ++i) ASSERT_EQ(f.callLoop(200), 19900);
  EXPECT_NE(exec::jitCodeOf(f.method()), nullptr);
  EXPECT_EQ(f.payoffDemotions(), 0u);
}

// Satellite 3: a demotion that lands mid-window must reset the window
// generation cleanly -- the epoch is bumped, the accumulators are
// zeroed, and the settled latch re-opens, so no sample from the retired
// generation can leak into the next one.
TEST(JitPayoff, MidWindowDemoteResetsPayoffWindow) {
  IJVM_REQUIRE_JIT();
  VmOptions opts = payoffOptions();
  opts.jit_payoff_min_speedup = 0.25;  // keep the model from demoting first
  PayoffVm f(opts);
  // Promote (and start filling the post window without finishing it:
  // cap is 4, run exactly one compiled call after promotion).
  JMethod* m = f.method();
  int calls = 0;
  while (exec::jitCodeOf(m) == nullptr && calls < 100) {
    ASSERT_EQ(f.callLoop(50), 1225);
    ++calls;
  }
  ASSERT_NE(exec::jitCodeOf(m), nullptr) << "method never promoted";
  ASSERT_EQ(f.callLoop(50), 1225);  // one compiled invocation

  exec::QCode* qc = f.qcode();
  ASSERT_NE(qc, nullptr);
  const u32 epoch_before = qc->payoff_epoch.load();

  // Demote mid-window (the governor's DemoteJit path ends here too).
  ASSERT_TRUE(exec::demoteCompiled(f.vm, m));
  EXPECT_EQ(exec::jitCodeOf(m), nullptr);

  EXPECT_GT(qc->payoff_epoch.load(), epoch_before)
      << "retirement must open a new payoff generation";
  EXPECT_EQ(qc->payoff_post_samples.load(), 0u);
  EXPECT_EQ(qc->payoff_post_ns.load(), 0u);
  EXPECT_EQ(qc->payoff_pre_samples.load(), 0u);
  EXPECT_FALSE(qc->payoff_settled.load());
}

// Satellite 2: jit_hotness_floor decays back to zero under decay ticks
// (regression test for the floor being raised on demotion but never
// released -- methods stayed locked out of tier 3 forever).
TEST(JitPayoff, DemotedHotnessFloorDecaysAndReopensPromotion) {
  IJVM_REQUIRE_JIT();
  VmOptions opts = payoffOptions();
  opts.jit_payoff = false;  // floor mechanics only; no verdicts
  PayoffVm f(opts);
  JMethod* m = f.method();
  int calls = 0;
  while (exec::jitCodeOf(m) == nullptr && calls < 100) {
    ASSERT_EQ(f.callLoop(50), 1225);
    ++calls;
  }
  ASSERT_NE(exec::jitCodeOf(m), nullptr);
  ASSERT_TRUE(exec::demoteCompiled(f.vm, m));

  exec::QCode* qc = f.qcode();
  ASSERT_NE(qc, nullptr);
  const u64 floor = qc->jit_hotness_floor.load();
  ASSERT_GT(floor, 0u) << "demotion must raise the re-heat floor";

  // Each decay pass halves every demoted floor; the count of still-hot
  // floors reaches zero in ~log2(floor) passes.
  u32 remaining = ~0u;
  for (int pass = 0; pass < 64 && remaining != 0; ++pass) {
    remaining = exec::decayDemotedFloors(f.vm);
  }
  EXPECT_EQ(remaining, 0u);
  EXPECT_EQ(qc->jit_hotness_floor.load(), 0u);

  // With the floor gone the method re-promotes on accumulated hotness.
  for (int i = 0; i < 30 && exec::jitCodeOf(m) == nullptr; ++i) {
    ASSERT_EQ(f.callLoop(50), 1225);
  }
  EXPECT_NE(exec::jitCodeOf(m), nullptr)
      << "decayed floor should re-open tier-3 promotion";
}

}  // namespace
}  // namespace ijvm
