// Memory-accounting policies (heap/accounting_policy.h).
//
// AccountingPolicy::FirstReference is the paper's design (section 3.2);
// CreatorPays and DividedShared implement the "better resource accounting"
// it leaves as future work (section 4.4). The parameterized tests pin the
// invariants shared by all policies; the per-policy tests pin exactly how
// blame for a shared object differs -- including the section-4.4
// experiment-3 scenario (provider returns a large object, caller retains
// it) where the policies disagree on purpose.

#include <gtest/gtest.h>

#include "bytecode/builder.h"
#include "heap/object.h"
#include "osgi/framework.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

namespace ijvm {
namespace {

struct PolicyRig {
  explicit PolicyRig(AccountingPolicy policy) {
    VmOptions opts;
    opts.accounting_policy = policy;
    opts.gc_threshold = 64u << 20;  // no GC behind our back
    vm = std::make_unique<VM>(opts);
    installSystemLibrary(*vm);
    ClassLoader* l0 = vm->registry().newLoader("main");
    iso0 = vm->createIsolate(l0, "main");
    ClassLoader* la = vm->registry().newLoader("A");
    ClassLoader* lb = vm->registry().newLoader("B");
    a = vm->createIsolate(la, "A");
    b = vm->createIsolate(lb, "B");
    ta = vm->attachThread("ta", a);
    tb = vm->attachThread("tb", b);
  }

  Object* bigArrayFrom(JThread* t, i32 ints) {
    return vm->allocArrayObject(t, vm->registry().arrayClass("[I"), ints);
  }

  u64 charged(Isolate* iso) {
    return iso->stats.bytes_charged.load(std::memory_order_relaxed);
  }

  std::unique_ptr<VM> vm;
  Isolate* iso0 = nullptr;
  Isolate* a = nullptr;
  Isolate* b = nullptr;
  JThread* ta = nullptr;
  JThread* tb = nullptr;
};

class AccountingPolicyTest
    : public ::testing::TestWithParam<AccountingPolicy> {};

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, AccountingPolicyTest,
    ::testing::Values(AccountingPolicy::FirstReference,
                      AccountingPolicy::CreatorPays,
                      AccountingPolicy::DividedShared),
    [](const ::testing::TestParamInfo<AccountingPolicy>& info) {
      std::string n = accountingPolicyName(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST_P(AccountingPolicyTest, UnsharedObjectChargedToItsOnlyUser) {
  PolicyRig rig(GetParam());
  // A allocates and retains 1 MiB; nobody else sees it. All three policies
  // must agree: A pays, B pays ~nothing.
  Object* arr = rig.bigArrayFrom(rig.ta, 250000);
  GlobalRef* ref = rig.vm->addGlobalRef(arr, rig.a);
  rig.vm->collectGarbage(nullptr, nullptr);
  EXPECT_GT(rig.charged(rig.a), 900000u);
  EXPECT_LT(rig.charged(rig.b), 100000u);
  rig.vm->removeGlobalRef(ref);
}

TEST_P(AccountingPolicyTest, ChargesSumToLiveBytes) {
  PolicyRig rig(GetParam());
  // Mixed population: private to A, private to B, shared by both.
  GlobalRef* r1 = rig.vm->addGlobalRef(rig.bigArrayFrom(rig.ta, 50000), rig.a);
  GlobalRef* r2 = rig.vm->addGlobalRef(rig.bigArrayFrom(rig.tb, 80000), rig.b);
  Object* shared = rig.bigArrayFrom(rig.ta, 120000);
  GlobalRef* r3 = rig.vm->addGlobalRef(shared, rig.a);
  GlobalRef* r4 = rig.vm->addGlobalRef(shared, rig.b);

  GcStats stats = rig.vm->collectGarbage(nullptr, nullptr);
  u64 sum = 0;
  for (const IsolateCharge& c : stats.charges) sum += c.bytes;
  // Every policy accounts every live byte exactly once -- except
  // DividedShared, which loses at most (sharers-1) bytes per shared object
  // to integer division.
  EXPECT_LE(sum, stats.live_bytes);
  EXPECT_GE(sum + 64 * stats.shared_objects + 1, stats.live_bytes);
  for (GlobalRef* r : {r1, r2, r3, r4}) rig.vm->removeGlobalRef(r);
}

TEST_P(AccountingPolicyTest, SharedObjectBlameMatchesPolicy) {
  PolicyRig rig(GetParam());
  // A allocates 1 MiB; both A and B retain it.
  Object* arr = rig.bigArrayFrom(rig.ta, 250000);
  GlobalRef* ra = rig.vm->addGlobalRef(arr, rig.a);
  GlobalRef* rb = rig.vm->addGlobalRef(arr, rig.b);
  rig.vm->collectGarbage(nullptr, nullptr);

  const u64 ca = rig.charged(rig.a);
  const u64 cb = rig.charged(rig.b);
  switch (GetParam()) {
    case AccountingPolicy::FirstReference:
      // One of them pays in full (global refs enumerate in creation order:
      // A first), the other pays ~nothing.
      EXPECT_GT(ca, 900000u);
      EXPECT_LT(cb, 100000u);
      break;
    case AccountingPolicy::CreatorPays:
      // The allocator pays regardless of who retains.
      EXPECT_GT(ca, 900000u);
      EXPECT_LT(cb, 100000u);
      break;
    case AccountingPolicy::DividedShared:
      // Both pay about half.
      EXPECT_GT(ca, 400000u);
      EXPECT_LT(ca, 700000u);
      EXPECT_GT(cb, 400000u);
      EXPECT_LT(cb, 700000u);
      break;
  }
  rig.vm->removeGlobalRef(ra);
  rig.vm->removeGlobalRef(rb);
}

TEST_P(AccountingPolicyTest, DroppedByCreatorRetainedByOther) {
  PolicyRig rig(GetParam());
  // The section-4.4 experiment-3 shape: A creates, only B retains.
  Object* arr = rig.bigArrayFrom(rig.ta, 250000);
  GlobalRef* rb = rig.vm->addGlobalRef(arr, rig.b);
  rig.vm->collectGarbage(nullptr, nullptr);

  const u64 ca = rig.charged(rig.a);
  const u64 cb = rig.charged(rig.b);
  switch (GetParam()) {
    case AccountingPolicy::FirstReference:
    case AccountingPolicy::DividedShared:
      // Only B reaches it: B pays (the paper's documented imprecision --
      // the provider escapes blame -- persists under DividedShared because
      // the provider really holds no reference anymore).
      EXPECT_LT(ca, 100000u);
      EXPECT_GT(cb, 900000u);
      break;
    case AccountingPolicy::CreatorPays:
      // The allocator keeps paying: blame sticks to the producer.
      EXPECT_GT(ca, 900000u);
      EXPECT_LT(cb, 100000u);
      break;
  }
  rig.vm->removeGlobalRef(rb);
}

TEST_P(AccountingPolicyTest, SharedStatsOnlyComputedWhenDividing) {
  PolicyRig rig(GetParam());
  Object* arr = rig.bigArrayFrom(rig.ta, 1000);
  GlobalRef* ra = rig.vm->addGlobalRef(arr, rig.a);
  GlobalRef* rb = rig.vm->addGlobalRef(arr, rig.b);
  GcStats stats = rig.vm->collectGarbage(nullptr, nullptr);
  if (GetParam() == AccountingPolicy::DividedShared) {
    EXPECT_GE(stats.shared_objects, 1u);
    EXPECT_GE(stats.shared_bytes, 4000u);
  } else {
    EXPECT_EQ(stats.shared_objects, 0u);
  }
  rig.vm->removeGlobalRef(ra);
  rig.vm->removeGlobalRef(rb);
}

TEST_P(AccountingPolicyTest, DeepGraphChargedTransitively) {
  PolicyRig rig(GetParam());
  // A chain of ref-array nodes created by A, retained by A only: the whole
  // graph lands on A under every policy.
  JClass* ref_arr = rig.vm->registry().arrayClass("[Ljava/lang/Object;");
  LocalRootScope roots(rig.ta);
  Object* head = roots.add(rig.vm->allocArrayObject(rig.ta, ref_arr, 2));
  Object* cur = head;
  for (int i = 0; i < 64; ++i) {
    Object* next = roots.add(rig.vm->allocArrayObject(rig.ta, ref_arr, 2));
    Object* payload = roots.add(rig.bigArrayFrom(rig.ta, 2500));  // ~10 KiB
    cur->refElems()[0] = next;
    cur->refElems()[1] = payload;
    cur = next;
  }
  GlobalRef* ref = rig.vm->addGlobalRef(head, rig.a);
  rig.vm->collectGarbage(nullptr, nullptr);
  EXPECT_GT(rig.charged(rig.a), 64u * 10000u);
  EXPECT_LT(rig.charged(rig.b), 10000u);
  rig.vm->removeGlobalRef(ref);
}

// Guest-level reproduction of section 4.4 experiment 3 under the two new
// policies (the FirstReference outcome is already pinned by
// tests/test_accounting.cpp and bench/accounting_limits).
class Sec44Exp3Test : public ::testing::TestWithParam<AccountingPolicy> {};

INSTANTIATE_TEST_SUITE_P(
    NewPolicies, Sec44Exp3Test,
    ::testing::Values(AccountingPolicy::CreatorPays,
                      AccountingPolicy::DividedShared),
    [](const ::testing::TestParamInfo<AccountingPolicy>& info) {
      std::string n = accountingPolicyName(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST_P(Sec44Exp3Test, ProviderReturnsLargeObjectClientRetains) {
  VmOptions opts;
  opts.accounting_policy = GetParam();
  opts.gc_threshold = 64u << 20;
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);

  // Shared interface: mk() returns a fresh 1 MiB int array.
  ClassLoader* shared = fw.frameworkIsolate()->loader;
  {
    ClassBuilder cb("apix/Maker", "", ACC_PUBLIC | ACC_INTERFACE);
    cb.abstractMethod("mk", "()Ljava/lang/Object;");
    shared->define(cb.build());
  }

  BundleDescriptor provider;
  provider.symbolic_name = "provider";
  {
    ClassBuilder cb("prov/Impl");
    cb.addInterface("apix/Maker");
    auto& mk = cb.method("mk", "()Ljava/lang/Object;");
    mk.iconst(250000).newarray(Kind::Int).areturn();
    provider.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("prov/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.aload(1).ldcStr("maker").newDefault("prov/Impl");
    start.invokevirtual("osgi/BundleContext", "registerService",
                        "(Ljava/lang/String;Ljava/lang/Object;)V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    provider.classes.push_back(cb.build());
    provider.activator = "prov/Activator";
  }

  BundleDescriptor client;
  client.symbolic_name = "client";
  {
    ClassBuilder cb("cli/Main");
    cb.field("kept", "Ljava/lang/Object;", ACC_PUBLIC | ACC_STATIC);
    cb.field("svc", "Lapix/Maker;", ACC_PUBLIC | ACC_STATIC);
    auto& grab = cb.method("grab", "()V", ACC_PUBLIC | ACC_STATIC);
    grab.getstatic("cli/Main", "svc", "Lapix/Maker;");
    grab.invokeinterface("apix/Maker", "mk", "()Ljava/lang/Object;");
    grab.putstatic("cli/Main", "kept", "Ljava/lang/Object;");
    grab.ret();
    client.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("cli/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.aload(1).ldcStr("maker");
    start.invokevirtual("osgi/BundleContext", "getService",
                        "(Ljava/lang/String;)Ljava/lang/Object;");
    start.checkcast("apix/Maker").putstatic("cli/Main", "svc", "Lapix/Maker;");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    client.classes.push_back(cb.build());
    client.activator = "cli/Activator";
  }

  Bundle* pb = fw.install(std::move(provider));
  Bundle* cb2 = fw.install(std::move(client));
  fw.start(pb);
  fw.start(cb2);

  JThread* t = vm.mainThread();
  vm.callStaticIn(t, cb2->loader(), "cli/Main", "grab", "()V", {});
  ASSERT_EQ(t->pending_exception, nullptr) << vm.pendingMessage(t);
  vm.collectGarbage(t, nullptr);

  const u64 prov_bytes = pb->isolate()->stats.bytes_charged.load();
  const u64 cli_bytes = cb2->isolate()->stats.bytes_charged.load();
  if (GetParam() == AccountingPolicy::CreatorPays) {
    // The paper's misattribution is fixed: the producer M is billed.
    EXPECT_GT(prov_bytes, 900000u);
    EXPECT_LT(cli_bytes, 200000u);
  } else {
    // DividedShared bills the retainer (only the client still reaches the
    // array) -- same outcome as the paper here, by design.
    EXPECT_GT(cli_bytes, 900000u);
    EXPECT_LT(prov_bytes, 200000u);
  }
}

}  // namespace
}  // namespace ijvm
