// End-to-end smoke: boot a VM, define a bundle class, run guest code.
#include <gtest/gtest.h>

#include "bytecode/builder.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"

namespace ijvm {
namespace {

TEST(Smoke, AddTwoInts) {
  VM vm;
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");

  ClassBuilder cb("app/Main");
  auto& m = cb.method("add", "(II)I", ACC_STATIC | ACC_PUBLIC);
  m.iload(0).iload(1).iadd().ireturn();
  app->define(cb.build());

  vm.createIsolate(app, "app");
  Value r = vm.callStatic(vm.mainThread(), "app/Main", "add", "(II)I",
                          {Value::ofInt(2), Value::ofInt(40)});
  ASSERT_EQ(vm.mainThread()->pending_exception, nullptr)
      << vm.pendingMessage(vm.mainThread());
  EXPECT_EQ(r.asInt(), 42);
}

TEST(Smoke, LoopAndStatics) {
  VM vm;
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");

  ClassBuilder cb("app/Loop");
  cb.field("total", "I", ACC_STATIC | ACC_PUBLIC);
  auto& m = cb.method("sum", "(I)I", ACC_STATIC | ACC_PUBLIC);
  // for (i = 0; i < n; i++) total += i; return total;
  Label head = m.newLabel();
  Label done = m.newLabel();
  m.iconst(0).istore(1);
  m.bind(head).iload(1).iload(0).ifIcmpGe(done);
  m.getstatic("app/Loop", "total", "I").iload(1).iadd();
  m.putstatic("app/Loop", "total", "I");
  m.iinc(1, 1).gotoLabel(head);
  m.bind(done).getstatic("app/Loop", "total", "I").ireturn();
  app->define(cb.build());

  vm.createIsolate(app, "app");
  Value r = vm.callStatic(vm.mainThread(), "app/Loop", "sum", "(I)I",
                          {Value::ofInt(100)});
  ASSERT_EQ(vm.mainThread()->pending_exception, nullptr)
      << vm.pendingMessage(vm.mainThread());
  EXPECT_EQ(r.asInt(), 4950);
}

TEST(Smoke, StringsAndObjects) {
  VM vm;
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");

  ClassBuilder cb("app/Str");
  auto& m = cb.method("greet", "()Ljava/lang/String;", ACC_STATIC | ACC_PUBLIC);
  m.ldcStr("hello ").ldcStr("world");
  m.invokevirtual("java/lang/String", "concat",
                  "(Ljava/lang/String;)Ljava/lang/String;");
  m.areturn();
  app->define(cb.build());

  vm.createIsolate(app, "app");
  Value r = vm.callStatic(vm.mainThread(), "app/Str", "greet",
                          "()Ljava/lang/String;", {});
  ASSERT_EQ(vm.mainThread()->pending_exception, nullptr)
      << vm.pendingMessage(vm.mainThread());
  ASSERT_NE(r.asRef(), nullptr);
  EXPECT_EQ(VM::stringValue(r.asRef()), "hello world");
}

}  // namespace
}  // namespace ijvm
