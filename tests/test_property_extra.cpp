// Extended property suites (deterministic seed sweeps):
//  1. verifier mutation fuzzing -- randomly corrupted programs are either
//     rejected by the verifier or execute without harming the host VM
//     (the type-safety property isolation rests on, paper section 3.1);
//  2. string interning -- per-isolate identity, cross-isolate separation
//     in isolated mode, global identity in shared mode (paper section 3.5);
//  3. monitor mutual exclusion under contention;
//  4. GC accounting invariant -- charges sum to the live heap under every
//     accounting policy, on random cross-isolate object graphs;
//  5. termination geometry -- killing an isolate returns control to all
//     concurrent callers at every call depth, with the thread's isolate
//     reference restored.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "bytecode/builder.h"
#include "heap/object.h"
#include "stdlib/system_library.h"
#include "support/rng.h"
#include "support/strf.h"
#include "verifier/verifier.h"

namespace ijvm {
namespace {

using namespace std::chrono;

// ------------------------------------------------ 1. verifier mutations

// Emits a small valid program f(II)I with arithmetic, locals, a loop and a
// conditional, mirroring what ClassBuilder users write.
void emitValidProgram(Rng& rng, MethodBuilder& m) {
  Label loop = m.newLabel(), done = m.newLabel(), other = m.newLabel();
  m.iload(0).istore(2);
  m.iconst(static_cast<i32>(rng.nextBounded(8)) + 1).istore(3);
  m.bind(loop).iload(3).ifle(done);
  m.iload(2).iload(1).iadd().istore(2);
  switch (rng.nextBounded(3)) {
    case 0:
      m.iload(2).iconst(3).imul().istore(2);
      break;
    case 1:
      m.iload(2).iload(0).ixor().istore(2);
      break;
    default:
      m.iload(2).iconst(1).ishl().istore(2);
      break;
  }
  m.iload(2).ifge(other);
  m.iload(2).ineg().istore(2);
  m.bind(other);
  m.iinc(3, -1).gotoLabel(loop);
  m.bind(done).iload(2).ireturn();
}

// Applies one random structural mutation to the method's code.
void mutate(Rng& rng, MethodDef& def) {
  std::vector<Instruction>& code = def.code.insns;
  if (code.empty()) return;
  size_t i = rng.nextBounded(code.size());
  switch (rng.nextBounded(4)) {
    case 0: {  // random opcode
      code[i].op = static_cast<Op>(rng.nextBounded(static_cast<u64>(kOpCount)));
      break;
    }
    case 1:  // perturb the operand
      code[i].a = static_cast<i32>(rng.nextInt());
      break;
    case 2:  // delete an instruction
      code.erase(code.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    default: {  // swap two instructions
      size_t j = rng.nextBounded(code.size());
      std::swap(code[i], code[j]);
      break;
    }
  }
}

class VerifierMutationProperty : public ::testing::TestWithParam<int> {};

TEST_P(VerifierMutationProperty, MutatedProgramsAreRejectedOrRunSafely) {
  const u64 seed = 0xf00du + static_cast<u64>(GetParam()) * 104729u;
  Rng rng(seed);

  VM vm;  // verify = true
  installSystemLibrary(vm);
  ClassLoader* l0 = vm.registry().newLoader("main");
  vm.createIsolate(l0, "main");

  for (int round = 0; round < 24; ++round) {
    ClassBuilder cb(strf("mut/C%d_%d", GetParam(), round));
    auto& m = cb.method("f", "(II)I", ACC_PUBLIC | ACC_STATIC);
    emitValidProgram(rng, m);
    ClassDef def = cb.build();
    const int mutations = 1 + static_cast<int>(rng.nextBounded(3));
    for (int k = 0; k < mutations; ++k) mutate(rng, def.methods.at(0));

    // A fresh loader+isolate per program so a hang can be terminated
    // without disturbing the next round (dogfooding paper section 3.3).
    ClassLoader* loader =
        vm.registry().newLoader(strf("mut%d_%d", GetParam(), round));
    Isolate* iso = vm.createIsolate(loader, strf("mut%d_%d", GetParam(), round));
    std::string cls_name = def.name;
    try {
      loader->define(std::move(def));
    } catch (const VerifyError&) {
      continue;  // rejected: the gate did its job
    }

    // Accepted: the program must run without corrupting the host. Guest
    // exceptions (NPE, ArithmeticException...) and non-termination are
    // acceptable outcomes; aborts/crashes are not.
    std::atomic<bool> done{false};
    JThread* t = vm.attachThread("fuzz", iso);
    std::thread runner([&] {
      Value r = vm.callStaticIn(t, loader, cls_name, "f", "(II)I",
                                {Value::ofInt(rng.nextInt() % 100),
                                 Value::ofInt(rng.nextInt() % 100)});
      (void)r;
      vm.clearPending(t);
      done.store(true, std::memory_order_release);
      vm.detachThread(t);
    });
    auto deadline = steady_clock::now() + seconds(5);
    while (!done.load(std::memory_order_acquire) &&
           steady_clock::now() < deadline) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    if (!done.load(std::memory_order_acquire)) {
      // Mutation built an infinite loop: kill the isolate, the thread must
      // unwind (this asserts termination works on arbitrary verified code).
      ASSERT_TRUE(vm.terminateIsolate(vm.mainThread(), iso));
      auto kill_deadline = steady_clock::now() + seconds(5);
      while (!done.load(std::memory_order_acquire) &&
             steady_clock::now() < kill_deadline) {
        std::this_thread::sleep_for(milliseconds(1));
      }
      ASSERT_TRUE(done.load(std::memory_order_acquire))
          << "terminated isolate failed to unwind (seed " << seed << ")";
    }
    runner.join();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierMutationProperty, ::testing::Range(0, 12));

// --------------------------------------------------- 2. interning identity

class InterningProperty : public ::testing::TestWithParam<int> {};

std::string randomString(Rng& rng) {
  std::string s;
  const size_t n = 1 + rng.nextBounded(24);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>('a' + rng.nextBounded(26)));
  }
  return s;
}

TEST_P(InterningProperty, PerIsolateIdentityCrossIsolateSeparation) {
  const u64 seed = 0xabcu + static_cast<u64>(GetParam()) * 7919u;
  Rng rng(seed);
  VM vm;  // isolated mode
  installSystemLibrary(vm);
  ClassLoader* l0 = vm.registry().newLoader("main");
  vm.createIsolate(l0, "main");
  ClassLoader* la = vm.registry().newLoader("A");
  ClassLoader* lb = vm.registry().newLoader("B");
  Isolate* a = vm.createIsolate(la, "A");
  Isolate* b = vm.createIsolate(lb, "B");
  JThread* ta = vm.attachThread("ta", a);
  JThread* tb = vm.attachThread("tb", b);

  for (int i = 0; i < 32; ++i) {
    std::string s = randomString(rng);
    Object* a1 = vm.internString(ta, s);
    Object* a2 = vm.internString(ta, s);
    Object* b1 = vm.internString(tb, s);
    EXPECT_EQ(a1, a2) << "intern not idempotent within an isolate";
    EXPECT_NE(a1, b1) << "strings shared across isolates (paper 3.1 violated)";
    EXPECT_EQ(a1->str(), b1->str());  // equals() still works (paper 3.5)
  }
}

TEST_P(InterningProperty, SharedModeHasOneGlobalTable) {
  const u64 seed = 0xdefu + static_cast<u64>(GetParam()) * 271u;
  Rng rng(seed);
  VM vm(VmOptions::shared());
  installSystemLibrary(vm);
  ClassLoader* l0 = vm.registry().newLoader("main");
  vm.createIsolate(l0, "main");
  ClassLoader* la = vm.registry().newLoader("A");
  ClassLoader* lb = vm.registry().newLoader("B");
  Isolate* a = vm.createIsolate(la, "A");
  Isolate* b = vm.createIsolate(lb, "B");
  JThread* ta = vm.attachThread("ta", a);
  JThread* tb = vm.attachThread("tb", b);

  for (int i = 0; i < 16; ++i) {
    std::string s = randomString(rng);
    EXPECT_EQ(vm.internString(ta, s), vm.internString(tb, s))
        << "baseline JVM interning must be global (attack A2's surface)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterningProperty, ::testing::Range(0, 8));

// ------------------------------------------- 3. monitor mutual exclusion

class MonitorContentionProperty : public ::testing::TestWithParam<int> {};

TEST_P(MonitorContentionProperty, SynchronizedCounterIsExact) {
  const int threads = GetParam();
  constexpr i32 kPerThread = 400;

  VM vm;
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");
  Isolate* iso = vm.createIsolate(app, "app");

  ClassBuilder cb("mx/Counter");
  cb.field("n", "I", ACC_PUBLIC | ACC_STATIC);
  auto& inc = cb.method("inc", "()V",
                        ACC_PUBLIC | ACC_STATIC | ACC_SYNCHRONIZED);
  // n = n + 1 with a deliberate read-modify-write window.
  inc.getstatic("mx/Counter", "n", "I").iconst(1).iadd();
  inc.putstatic("mx/Counter", "n", "I").ret();
  auto& get = cb.method("get", "()I", ACC_PUBLIC | ACC_STATIC);
  get.getstatic("mx/Counter", "n", "I").ireturn();
  app->define(cb.build());

  std::vector<std::thread> workers;
  for (int k = 0; k < threads; ++k) {
    JThread* t = vm.attachThread(strf("w%d", k), iso);
    workers.emplace_back([&vm, t, app] {
      for (i32 i = 0; i < kPerThread; ++i) {
        vm.callStaticIn(t, app, "mx/Counter", "inc", "()V", {});
      }
      vm.detachThread(t);
    });
  }
  for (std::thread& w : workers) w.join();

  Value r = vm.callStaticIn(vm.mainThread(), app, "mx/Counter", "get", "()I", {});
  EXPECT_EQ(r.asInt(), threads * kPerThread);
}

INSTANTIATE_TEST_SUITE_P(Threads, MonitorContentionProperty,
                         ::testing::Values(2, 4, 8));

// -------------------------------------- 4. accounting invariant on graphs

struct PolicySeed {
  AccountingPolicy policy;
  int seed;
};

class AccountingInvariantProperty
    : public ::testing::TestWithParam<PolicySeed> {};

TEST_P(AccountingInvariantProperty, ChargesCoverTheLiveHeap) {
  Rng rng(0x5151u + static_cast<u64>(GetParam().seed) * 6151u);
  VmOptions opts;
  opts.accounting_policy = GetParam().policy;
  opts.gc_threshold = 256u << 20;
  VM vm(opts);
  installSystemLibrary(vm);
  ClassLoader* l0 = vm.registry().newLoader("main");
  vm.createIsolate(l0, "main");
  std::vector<Isolate*> isos;
  for (int i = 0; i < 4; ++i) {
    ClassLoader* l = vm.registry().newLoader(strf("g%d", i));
    isos.push_back(vm.createIsolate(l, strf("g%d", i)));
  }

  // Random forest of ref-arrays with random cross-links, each root pinned
  // by 1-3 random isolates.
  JThread* t = vm.mainThread();
  JClass* ref_arr = vm.registry().arrayClass("[Ljava/lang/Object;");
  LocalRootScope roots(t);
  std::vector<Object*> nodes;
  const size_t n = 40 + rng.nextBounded(120);
  for (size_t i = 0; i < n; ++i) {
    Object* o = roots.add(
        vm.allocArrayObject(t, ref_arr, 2 + static_cast<i32>(rng.nextBounded(6))));
    if (!nodes.empty() && rng.nextBounded(100) < 70) {
      Object* parent = nodes[rng.nextBounded(nodes.size())];
      parent->refElems()[rng.nextBounded(static_cast<u64>(parent->length))] = o;
    }
    nodes.push_back(o);
  }
  for (Object* o : nodes) {
    if (rng.nextBounded(100) < 30) {
      const u64 pins = 1 + rng.nextBounded(3);
      for (u64 p = 0; p < pins; ++p) {
        vm.addGlobalRef(o, isos[rng.nextBounded(isos.size())]);
      }
    }
  }

  GcStats stats = vm.collectGarbage(t, nullptr);
  u64 sum = 0;
  for (const IsolateCharge& c : stats.charges) sum += c.bytes;
  EXPECT_LE(sum, stats.live_bytes);
  // DividedShared may round down by at most 63 bytes per shared object;
  // the single-owner policies must account every byte exactly.
  const u64 slack = GetParam().policy == AccountingPolicy::DividedShared
                        ? 64 * stats.shared_objects
                        : 0;
  EXPECT_GE(sum + slack, stats.live_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AccountingInvariantProperty,
    ::testing::Values(PolicySeed{AccountingPolicy::FirstReference, 0},
                      PolicySeed{AccountingPolicy::FirstReference, 1},
                      PolicySeed{AccountingPolicy::FirstReference, 2},
                      PolicySeed{AccountingPolicy::CreatorPays, 0},
                      PolicySeed{AccountingPolicy::CreatorPays, 1},
                      PolicySeed{AccountingPolicy::CreatorPays, 2},
                      PolicySeed{AccountingPolicy::DividedShared, 0},
                      PolicySeed{AccountingPolicy::DividedShared, 1},
                      PolicySeed{AccountingPolicy::DividedShared, 2}),
    [](const ::testing::TestParamInfo<PolicySeed>& info) {
      std::string n = accountingPolicyName(info.param.policy);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n + "_" + std::to_string(info.param.seed);
    });

// ------------------------------------------------ 5. termination geometry

struct Geometry {
  int threads;
  i32 depth;
};

class TerminationGeometryProperty : public ::testing::TestWithParam<Geometry> {};

TEST_P(TerminationGeometryProperty, KillReturnsControlToEveryCaller) {
  const auto [threads, depth] = GetParam();

  VM vm;
  installSystemLibrary(vm);
  ClassLoader* shared = vm.registry().newLoader("shared");
  {
    ClassBuilder itf("tg/Svc", "", ACC_PUBLIC | ACC_INTERFACE);
    itf.abstractMethod("work", "(I)I");
    shared->define(itf.build());
  }
  ClassLoader* l0 = vm.registry().newLoader("home", shared);
  Isolate* home = vm.createIsolate(l0, "home");
  ClassLoader* lv = vm.registry().newLoader("victim", shared);
  Isolate* victim = vm.createIsolate(lv, "victim");

  // victim: work(d) recurses d times inside its own isolate, then parks in
  // an infinite spin so callers are captive at the requested depth.
  {
    ClassBuilder cb("tg/Impl");
    cb.addInterface("tg/Svc");
    auto& w = cb.method("work", "(I)I");
    Label spin = w.newLabel(), recurse = w.newLabel();
    w.iload(1).ifgt(recurse);
    w.bind(spin).gotoLabel(spin);  // captive
    w.bind(recurse);
    w.aload(0).iload(1).iconst(1).isub();
    w.invokeinterface("tg/Svc", "work", "(I)I").ireturn();
    lv->define(cb.build());
  }
  // home: caller(svc, d) calls the service, catching Throwable -> -1.
  {
    ClassBuilder cb("tg/Caller");
    auto& c = cb.method("call", "(Ltg/Svc;I)I", ACC_PUBLIC | ACC_STATIC);
    Label from = c.newLabel(), to = c.newLabel(), handler = c.newLabel();
    c.bind(from);
    c.aload(0).iload(1).invokeinterface("tg/Svc", "work", "(I)I");
    c.bind(to).ireturn();
    c.bind(handler).pop().iconst(-1).ireturn();
    c.handler(from, to, handler, "java/lang/Throwable");
    l0->define(cb.build());
  }

  JThread* main = vm.mainThread();
  LocalRootScope roots(main);
  Object* svc = roots.add(
      vm.allocObject(main, vm.registry().resolve(lv, "tg/Impl")));

  std::atomic<int> returned{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> callers;
  for (int k = 0; k < threads; ++k) {
    JThread* t = vm.attachThread(strf("c%d", k), home);
    callers.emplace_back([&, t] {
      Value r = vm.callStaticIn(t, l0, "tg/Caller", "call", "(Ltg/Svc;I)I",
                                {Value::ofRef(svc), Value::ofInt(depth)});
      if (t->pending_exception != nullptr) wrong.fetch_add(1);
      vm.clearPending(t);
      if (!(r.kind == Kind::Int && r.asInt() == -1)) wrong.fetch_add(1);
      if (t->current_isolate.load() != home) wrong.fetch_add(1);
      returned.fetch_add(1, std::memory_order_release);
      vm.detachThread(t);
    });
  }

  // Let every caller reach the captive spin, then kill the victim.
  auto busy_deadline = steady_clock::now() + seconds(10);
  while (victim->stats.calls_in.load() < static_cast<u64>(threads) &&
         steady_clock::now() < busy_deadline) {
    std::this_thread::sleep_for(milliseconds(2));
  }
  std::this_thread::sleep_for(milliseconds(20));
  ASSERT_TRUE(vm.terminateIsolate(main, victim));

  auto deadline = steady_clock::now() + seconds(10);
  while (returned.load(std::memory_order_acquire) < threads &&
         steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(2));
  }
  EXPECT_EQ(returned.load(), threads);
  EXPECT_EQ(wrong.load(), 0);
  for (std::thread& c : callers) c.join();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TerminationGeometryProperty,
    ::testing::Values(Geometry{1, 0}, Geometry{1, 16}, Geometry{2, 4},
                      Geometry{4, 32}, Geometry{8, 8}, Geometry{4, 128}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return "t" + std::to_string(info.param.threads) + "_d" +
             std::to_string(info.param.depth);
    });

}  // namespace
}  // namespace ijvm
