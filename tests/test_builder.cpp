// Bytecode layer units: descriptors, constant pool interning, the builder's
// label fixup and max_locals inference, and the disassembler.
#include <gtest/gtest.h>

#include "bytecode/builder.h"
#include "bytecode/descriptor.h"
#include "bytecode/disasm.h"

namespace ijvm {
namespace {

TEST(Descriptor, ParsesPrimitives) {
  EXPECT_EQ(parseTypeDesc("I").kind, Kind::Int);
  EXPECT_EQ(parseTypeDesc("J").kind, Kind::Long);
  EXPECT_EQ(parseTypeDesc("D").kind, Kind::Double);
}

TEST(Descriptor, ParsesClassAndArray) {
  TypeDesc s = parseTypeDesc("Ljava/lang/String;");
  EXPECT_EQ(s.kind, Kind::Ref);
  EXPECT_EQ(s.class_name, "java/lang/String");
  EXPECT_EQ(s.array_dims, 0);

  TypeDesc arr = parseTypeDesc("[[I");
  EXPECT_EQ(arr.kind, Kind::Ref);
  EXPECT_EQ(arr.array_dims, 2);
  EXPECT_EQ(arr.elem_kind, Kind::Int);
  EXPECT_EQ(arr.toString(), "[[I");

  TypeDesc sarr = parseTypeDesc("[Ljava/lang/String;");
  EXPECT_EQ(sarr.array_dims, 1);
  EXPECT_EQ(sarr.class_name, "java/lang/String");
  EXPECT_EQ(sarr.toString(), "[Ljava/lang/String;");
}

TEST(Descriptor, ParsesMethodSignatures) {
  MethodSig sig = parseMethodSig("(I[Ljava/lang/String;D)J");
  ASSERT_EQ(sig.params.size(), 3u);
  EXPECT_EQ(sig.params[0].kind, Kind::Int);
  EXPECT_EQ(sig.params[1].array_dims, 1);
  EXPECT_EQ(sig.params[2].kind, Kind::Double);
  EXPECT_EQ(sig.ret.kind, Kind::Long);
  EXPECT_EQ(sig.argSlots(true), 3);
  EXPECT_EQ(sig.argSlots(false), 4);
}

TEST(Descriptor, VoidReturnAndNoParams) {
  MethodSig sig = parseMethodSig("()V");
  EXPECT_TRUE(sig.params.empty());
  EXPECT_EQ(sig.ret.kind, Kind::Void);
}

TEST(ConstantPool, InternsEqualEntries) {
  ConstantPool pool;
  i32 a = pool.addInt(42);
  i32 b = pool.addInt(42);
  i32 c = pool.addInt(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);

  i32 m1 = pool.addMethodRef("x/Y", "f", "()V");
  i32 m2 = pool.addMethodRef("x/Y", "f", "()V");
  i32 m3 = pool.addMethodRef("x/Y", "f", "(I)V");
  EXPECT_EQ(m1, m2);
  EXPECT_NE(m1, m3);

  i32 s1 = pool.addString("hello");
  i32 s2 = pool.addString("hello");
  EXPECT_EQ(s1, s2);
}

TEST(ConstantPool, DistinguishesTagsWithSamePayload) {
  ConstantPool pool;
  i32 s = pool.addString("x/Y");
  i32 c = pool.addClassRef("x/Y");
  EXPECT_NE(s, c);
}

TEST(Builder, ForwardAndBackwardLabelsResolve) {
  ClassBuilder cb("b/Loop");
  auto& m = cb.method("f", "(I)I", ACC_PUBLIC | ACC_STATIC);
  Label head = m.newLabel();
  Label done = m.newLabel();
  m.iconst(0).istore(1);
  m.bind(head).iload(0).ifle(done);       // forward
  m.iload(1).iload(0).iadd().istore(1);
  m.iinc(0, -1).gotoLabel(head);          // backward
  m.bind(done).iload(1).ireturn();
  ClassDef def = cb.build();

  const MethodDef* f = nullptr;
  for (const MethodDef& md : def.methods) {
    if (md.name == "f") f = &md;
  }
  ASSERT_NE(f, nullptr);
  // The ifle target must point at the instruction bound to `done`.
  const Instruction& branch = f->code.insns[3];
  EXPECT_EQ(branch.op, Op::IFLE);
  EXPECT_EQ(f->code.insns[static_cast<size_t>(branch.a)].op, Op::ILOAD);
  // GOTO points back at `head` (instruction index 2).
  bool found_backward = false;
  for (const Instruction& insn : f->code.insns) {
    if (insn.op == Op::GOTO && insn.a == 2) found_backward = true;
  }
  EXPECT_TRUE(found_backward);
}

TEST(Builder, MaxLocalsInference) {
  auto find = [](const ClassDef& def, const std::string& name) -> const MethodDef* {
    for (const MethodDef& m : def.methods) {
      if (m.name == name) return &m;
    }
    return nullptr;
  };

  ClassBuilder cb("b/Locals");
  auto& m = cb.method("f", "(IJ)V", ACC_PUBLIC | ACC_STATIC);
  m.iconst(1).istore(5);
  m.ret();
  ClassDef def = cb.build();
  ASSERT_NE(find(def, "f"), nullptr);
  EXPECT_EQ(find(def, "f")->code.max_locals, 6);  // slot 5 touched

  ClassBuilder cb2("b/Locals2");
  auto& m2 = cb2.method("g", "(IJD)V", ACC_PUBLIC | ACC_STATIC);
  m2.ret();
  ClassDef def2 = cb2.build();
  ASSERT_NE(find(def2, "g"), nullptr);
  EXPECT_EQ(find(def2, "g")->code.max_locals, 3);  // one slot per arg
}

TEST(Builder, DefaultCtorAddedOnce) {
  ClassBuilder cb("b/Ctor");
  ClassDef def = cb.build();
  int ctors = 0;
  for (const MethodDef& m : def.methods) {
    if (m.name == "<init>") ++ctors;
  }
  EXPECT_EQ(ctors, 1);
}

TEST(Builder, InterfacesGetNoCtor) {
  ClassBuilder cb("b/Itf", "", ACC_PUBLIC | ACC_INTERFACE);
  cb.abstractMethod("f", "()V");
  ClassDef def = cb.build();
  for (const MethodDef& m : def.methods) {
    EXPECT_NE(m.name, "<init>");
  }
}

TEST(Builder, NameSurvivesBuild) {
  ClassBuilder cb("b/Named");
  EXPECT_EQ(cb.name(), "b/Named");
  ClassDef def = cb.build();
  EXPECT_EQ(def.name, "b/Named");
  EXPECT_EQ(cb.name(), "b/Named");  // still valid after the move
}

TEST(Disasm, RendersInstructionsAndHandlers) {
  ClassBuilder cb("b/Show");
  cb.field("count", "I", ACC_PUBLIC | ACC_STATIC);
  auto& m = cb.method("f", "()I", ACC_PUBLIC | ACC_STATIC);
  Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
  m.bind(from);
  m.getstatic("b/Show", "count", "I");
  m.ldcStr("hello");
  m.invokevirtual("java/lang/String", "length", "()I");
  m.iadd();
  m.bind(to).ireturn();
  m.bind(handler).pop().iconst(-1).ireturn();
  m.handler(from, to, handler, "java/lang/Throwable");
  ClassDef def = cb.build();

  std::string text = disasmClass(def);
  EXPECT_NE(text.find("class b/Show"), std::string::npos);
  EXPECT_NE(text.find("GETSTATIC"), std::string::npos);
  EXPECT_NE(text.find("b/Show.count:I"), std::string::npos);
  EXPECT_NE(text.find("\"hello\""), std::string::npos);
  EXPECT_NE(text.find("java/lang/String.length()I"), std::string::npos);
  EXPECT_NE(text.find("catch java/lang/Throwable"), std::string::npos);
}

TEST(Disasm, MarksNativeMethods) {
  ClassBuilder cb("b/Nat");
  cb.nativeMethod("n", "()V");
  ClassDef def = cb.build();
  EXPECT_NE(disasmClass(def).find("<native>"), std::string::npos);
}

TEST(Opcodes, NamesAndBranchClassification) {
  EXPECT_STREQ(opName(Op::IADD), "IADD");
  EXPECT_STREQ(opName(Op::INVOKEVIRTUAL), "INVOKEVIRTUAL");
  EXPECT_TRUE(opIsBranch(Op::GOTO));
  EXPECT_TRUE(opIsBranch(Op::IFNULL));
  EXPECT_FALSE(opIsBranch(Op::IADD));
  EXPECT_FALSE(opIsBranch(Op::ATHROW));
}

}  // namespace
}  // namespace ijvm
