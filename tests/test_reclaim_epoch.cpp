// Epoch-based reclamation of retired compiled code (docs/concurrency.md,
// "Era-based code reclamation"): reclaimJitCode frees a retired JitCode
// only once every counted (Running) mutator has published a safepoint era
// at or past the era the code was armed with, and its active count is
// zero. Covered here:
//   * the era gate itself: a mutator that has not polled past the
//     retiring era holds the free back, however many reclamation passes
//     run; one poll releases it;
//   * a thread stalled in a blocking native *inside* the compiled frame
//     delays reclamation through the active pin -- and the retired code
//     it sits in runs to completion uncorrupted;
//   * a kill-churn platform with an unlimited code-cache budget stays
//     bounded: every killed bundle's poisoned code is retired at the GC
//     that declares its isolate Dead and freed by the next concurrent
//     reclamation pass, with no stop-the-world;
//   * demotion racing termination in both orders while the bundle's hot
//     method is being executed from the mutator pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "bytecode/builder.h"
#include "exec/code_cache.h"
#include "exec/engine.h"
#include "exec/jit.h"
#include "exec/jit_internal.h"
#include "exec/quickened.h"
#include "osgi/framework.h"
#include "runtime/mutator_pool.h"
#include "runtime/safepoint.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

namespace ijvm {
namespace {

#ifdef IJVM_DISABLE_JIT
#define IJVM_REQUIRE_JIT() GTEST_SKIP() << "built with IJVM_DISABLE_JIT"
#else
#define IJVM_REQUIRE_JIT() (void)0
#endif

// Deterministic tiers: compile at the second entry, synchronously.
VmOptions jitOptions() {
  VmOptions opts = VmOptions::isolated();
  opts.exec_engine = ExecEngine::Jit;
  opts.fusion_threshold = 0;
  opts.jit_threshold = 0;
  opts.background_compile = false;
  opts.code_cache_budget = 0;  // unlimited: nothing reclaims but the eras
  return opts;
}

bool waitUntil(i64 timeout_ms, const std::function<bool()>& cond) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

// sum(0..n-1) via the canonical hot loop (same shape as test_code_cache).
void defineSumLoop(ClassBuilder& cb, const std::string& method_name) {
  auto& m = cb.method(method_name, "(I)I", ACC_PUBLIC | ACC_STATIC);
  Label head = m.newLabel(), done = m.newLabel();
  m.iconst(0).istore(1);
  m.iconst(0).istore(2);
  m.bind(head).iload(2).iload(0).ifIcmpGe(done);
  m.iload(1).iload(2).iadd().istore(1);
  m.iinc(2, 1).gotoLabel(head);
  m.bind(done).iload(1).ireturn();
}

i32 goldenSum(i32 n) {
  u32 sum = 0;
  for (u32 i = 0; i < static_cast<u32>(n); ++i) sum += i;
  return static_cast<i32>(sum);
}

// A counted mutator that polls only when told to: attaches a guest
// thread, walks it through the real Blocked -> Running transition, and
// then sits WITHOUT publishing eras -- exactly a mutator that has not
// reached a poll since before the arm. The test advances it through the
// numbered stages below.
TEST(EpochReclaim, CodeFreedOnlyAfterEveryThreadPassesRetiringEra) {
  IJVM_REQUIRE_JIT();
  VM vm(jitOptions());
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");
  {
    ClassBuilder cb("app/T");
    defineSumLoop(cb, "f");
    app->define(cb.build());
  }
  vm.createIsolate(app, "app");
  JThread* main = vm.mainThread();
  for (int i = 0; i < 2; ++i) {
    Value r = vm.callStaticIn(main, app, "app/T", "f", "(I)I",
                              {Value::ofInt(100)});
    ASSERT_EQ(main->pending_exception, nullptr) << vm.pendingMessage(main);
    ASSERT_EQ(r.asInt(), 4950);
  }
  JMethod* m =
      vm.registry().resolve(app, "app/T")->findMethod("f", "(I)I");
  ASSERT_NE(exec::jitCodeOf(m), nullptr);

  std::mutex mu;
  std::condition_variable cv;
  int stage = 0;
  auto advance = [&](int s) {
    std::lock_guard<std::mutex> lock(mu);
    stage = s;
    cv.notify_all();
  };
  auto await = [&](int s) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return stage >= s; });
  };
  std::thread laggard([&] {
    JThread* t = vm.attachThread("laggard", vm.isolateById(0));
    // Running (counted), era published as of *now* -- and then no polls.
    vm.safepoints().exitBlocked(t);
    advance(1);
    await(2);
    // The poll every mutator issues at the interpreter loop / JIT
    // back-edge: publish the current era.
    t->publishEra(vm.safepoints().currentEra());
    advance(3);
    await(4);
    vm.safepoints().enterBlocked(t);
    vm.detachThread(t);
  });
  await(1);

  // Retire the compiled method while the laggard is counted and stale.
  ASSERT_TRUE(exec::demoteCompiled(vm, m));
  ASSERT_GT(exec::codeCacheStats(vm).retired_bytes, 0u);

  // The first pass arms (advances the era once); the laggard's published
  // era predates the target, so no pass may free -- however many run.
  EXPECT_EQ(exec::reclaimJitCode(vm), 0u);
  const u64 armed_era = vm.safepoints().currentEra();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(exec::reclaimJitCode(vm), 0u);
  }
  // Re-arming is idempotent: already-armed code must not advance eras.
  EXPECT_EQ(vm.safepoints().currentEra(), armed_era);
  EXPECT_GT(exec::codeCacheStats(vm).retired_bytes, 0u);

  // One poll past the target releases the free.
  advance(2);
  await(3);
  EXPECT_EQ(exec::reclaimJitCode(vm), 1u);
  exec::CodeCacheStats stats = exec::codeCacheStats(vm);
  EXPECT_EQ(stats.retired_bytes, 0u);
  EXPECT_GE(stats.reclaimed, 1u);

  advance(4);
  laggard.join();
  vm.shutdownAllThreads();
}

TEST(EpochReclaim, ThreadBlockedInNativeInsideCompiledFrameDelaysViaActivePin) {
  IJVM_REQUIRE_JIT();
  VM vm(jitOptions());
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("app");
  {
    // nap(ms): sleep inside the compiled frame when ms > 0, then return
    // the sum loop's checksum. Heated with nap(0), stalled with nap(big).
    ClassBuilder cb("app/T");
    auto& m = cb.method("nap", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label skip = m.newLabel(), head = m.newLabel(), done = m.newLabel();
    m.iload(0).ifle(skip);
    m.iload(0).i2l().invokestatic("java/lang/Thread", "sleep", "(J)V");
    m.bind(skip);
    m.iconst(0).istore(1);
    m.iconst(0).istore(2);
    m.bind(head).iload(2).iconst(64).ifIcmpGe(done);
    m.iload(1).iload(2).iadd().istore(1);
    m.iinc(2, 1).gotoLabel(head);
    m.bind(done).iload(1).ireturn();
    app->define(cb.build());
  }
  vm.createIsolate(app, "app");
  JThread* main = vm.mainThread();
  // Heat with the sleep arm *taken* (1 ms): a never-executed arm would
  // stay unquickened and the compiled code would deopt right at it
  // instead of sleeping inside the frame.
  for (int i = 0; i < 2; ++i) {
    Value r = vm.callStaticIn(main, app, "app/T", "nap", "(I)I",
                              {Value::ofInt(1)});
    ASSERT_EQ(main->pending_exception, nullptr) << vm.pendingMessage(main);
    ASSERT_EQ(r.asInt(), goldenSum(64));
  }
  JMethod* m =
      vm.registry().resolve(app, "app/T")->findMethod("nap", "(I)I");
  exec::JitCode* jc = exec::jitCodeOf(m);
  ASSERT_NE(jc, nullptr);

  // A guest thread parks in Thread.sleep *inside* the compiled frame: it
  // is Blocked (quiescent for the era gate) but the frame pins the code
  // through JitCode::active.
  std::atomic<i32> result{-1};
  std::thread sleeper([&] {
    JThread* t = vm.attachThread("sleeper", vm.isolateById(0));
    Value r = vm.callStaticIn(t, app, "app/T", "nap", "(I)I",
                              {Value::ofInt(700)});
    EXPECT_EQ(t->pending_exception, nullptr) << vm.pendingMessage(t);
    result.store(r.asInt(), std::memory_order_release);
    vm.detachThread(t);
  });
  ASSERT_TRUE(waitUntil(5000, [&] {
    return jc->active.load(std::memory_order_acquire) > 0;
  })) << "sleeper never entered the compiled frame";

  // Retire out from under the parked frame, then hammer the reclaimer:
  // the active pin must hold every pass back, era gate notwithstanding.
  ASSERT_TRUE(exec::demoteCompiled(vm, m));
  while (jc->active.load(std::memory_order_acquire) > 0) {
    EXPECT_EQ(exec::reclaimJitCode(vm), 0u);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  sleeper.join();
  // Never corrupted: the stalled frame ran its retired code to completion.
  EXPECT_EQ(result.load(std::memory_order_acquire), goldenSum(64));

  // Pin dropped (and the sleeper detached): the already-armed code frees.
  EXPECT_EQ(exec::reclaimJitCode(vm), 1u);
  EXPECT_EQ(exec::codeCacheStats(vm).retired_bytes, 0u);
  vm.shutdownAllThreads();
}

TEST(EpochReclaim, KillChurnWithUnlimitedBudgetStaysBounded) {
  IJVM_REQUIRE_JIT();
  VM vm(jitOptions());
  installSystemLibrary(vm);
  Framework fw(vm);
  JThread* t = vm.mainThread();
  i32 expect = 0;
  for (i32 j = 0; j < 256; ++j) expect ^= j;

  u64 steady_installed = 0;
  u64 reclaimed_before = 0;
  for (int round = 0; round < 8; ++round) {
    Bundle* b = fw.install(makeMicroBundle("churn" + std::to_string(round)));
    fw.start(b);
    for (int i = 0; i < 2; ++i) {
      Value r = vm.callStaticIn(t, b->loader(), "micro/Bench", "spinFor",
                                "(I)I", {Value::ofInt(256)});
      ASSERT_EQ(t->pending_exception, nullptr) << vm.pendingMessage(t);
      ASSERT_EQ(r.asInt(), expect);
    }
    ASSERT_GT(b->isolate()->stats.jit_code_bytes.load(), 0)
        << "bundle never compiled";

    fw.killBundle(b);
    // The kill's own collection declared the thread-less isolate Dead --
    // but its sweep ran before its Dead-marking, so the poisoned code is
    // still installed and observable here (the PR that introduced
    // demotion pinned exactly this: a kill never vanishes code the tick
    // it lands)...
    ASSERT_EQ(b->isolate()->state.load(), IsolateState::Dead);
    EXPECT_GT(b->isolate()->stats.jit_code_bytes.load(), 0)
        << "kill's own GC must not retire the poisoned code, round "
        << round;
    // ...and the *concurrent* pass -- no stop-the-world, no further GC --
    // retires and frees it: with no counted mutators the arm and the free
    // land in one call.
    EXPECT_GE(exec::reclaimJitCode(vm), 1u) << "round " << round;

    exec::CodeCacheStats stats = exec::codeCacheStats(vm);
    EXPECT_EQ(stats.retired_bytes, 0u) << "round " << round;
    EXPECT_EQ(b->isolate()->stats.jit_code_bytes.load(), 0)
        << "dead bundle still holds code bytes, round " << round;
    EXPECT_GT(stats.reclaimed, reclaimed_before) << "round " << round;
    reclaimed_before = stats.reclaimed;
    // Bounded: with an unlimited budget the installed footprint must not
    // grow with the kill count -- only the first round's system-library
    // compiles stick.
    if (round == 0) {
      steady_installed = stats.installed_bytes;
    } else {
      EXPECT_LE(stats.installed_bytes, steady_installed)
          << "installed bytes grew with kill churn, round " << round;
    }
  }
  vm.shutdownAllThreads();
}

TEST(EpochReclaim, DemotionRacesTerminationInBothOrdersUnderThePool) {
  IJVM_REQUIRE_JIT();
  VmOptions opts = jitOptions();
  opts.mutator_threads = 2;
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);
  JThread* main = vm.mainThread();

  // Runs the bundle's hot method from a pool worker in a loop until the
  // kill unwinds it back to the worker's home isolate (StoppedIsolate).
  auto spinViaPool = [&](Bundle* b) {
    vm.mutatorPool().submit(
        [&vm, b](JThread* t) {
          for (;;) {
            vm.callStaticIn(t, b->loader(), "micro/Bench", "spinFor", "(I)I",
                            {Value::ofInt(1 << 18)});
            if (t->pending_exception != nullptr) {
              vm.clearPending(t);
              return;
            }
          }
        },
        b->isolate());
  };
  auto compiledSpin = [&](Bundle* b) {
    JMethod* spin = vm.registry()
                        .resolve(b->loader(), "micro/Bench")
                        ->findMethod("spinFor", "(I)I");
    EXPECT_TRUE(
        waitUntil(5000, [&] { return exec::jitCodeOf(spin) != nullptr; }))
        << "spinFor was never compiled";
    return spin;
  };
  auto expectFullyReclaimed = [&](Bundle* b, JMethod* spin) {
    vm.mutatorPool().drain();  // the worker unwound out of the bundle
    vm.collectGarbage(main, nullptr);  // declares the isolate Dead
    exec::reclaimJitCode(vm);
    EXPECT_EQ(exec::jitCodeOf(spin), nullptr);
    EXPECT_EQ(exec::codeCacheStats(vm).retired_bytes, 0u);
    EXPECT_EQ(b->isolate()->stats.jit_code_bytes.load(), 0);
    // The method-level poison barrier still refuses re-entry.
    vm.callStaticIn(main, b->loader(), "micro/Bench", "spinFor", "(I)I",
                    {Value::ofInt(8)});
    ASSERT_NE(main->pending_exception, nullptr);
    EXPECT_NE(vm.pendingMessage(main).find("StoppedIsolate"),
              std::string::npos);
    vm.clearPending(main);
  };

  // Order 1: demote first (the worker falls back to the interpreter
  // mid-spin), then terminate.
  Bundle* a = fw.install(makeMicroBundle("race-a"));
  fw.start(a);
  spinViaPool(a);
  JMethod* spin_a = compiledSpin(a);
  exec::demoteLoaderJit(vm, a->loader());
  EXPECT_EQ(exec::jitCodeOf(spin_a), nullptr);
  fw.killBundle(a);
  expectFullyReclaimed(a, spin_a);

  // Order 2: terminate first (poisons the compiled entry under
  // stop-the-world while the pool worker is parked at a poll), then
  // demote what the kill left behind.
  Bundle* b = fw.install(makeMicroBundle("race-b"));
  fw.start(b);
  spinViaPool(b);
  JMethod* spin_b = compiledSpin(b);
  fw.killBundle(b);
  exec::demoteLoaderJit(vm, b->loader());
  EXPECT_EQ(exec::jitCodeOf(spin_b), nullptr);
  expectFullyReclaimed(b, spin_b);

  vm.shutdownAllThreads();
}

}  // namespace
}  // namespace ijvm
