// On-stack replacement into the tier-3 JIT (src/exec/jit.cpp, contract in
// docs/jit.md "On-stack replacement"): a method that crosses jit_threshold
// *inside* one invocation is compiled at a loop back-edge batch flush and
// the live frame transfers into the compiled code without returning to the
// caller. Covered here:
//   * OSR fires mid-invocation (single long call crossing the threshold),
//     observable via profile counters (QCode::osr_entries_taken,
//     profile_invocations == 1) and disasmJit's OSR entry thunks;
//   * locals + operand stack transfer exactly (golden-value loop with a
//     live value parked on the operand stack across the back-edge);
//   * OSR + deopt round-trip (OSR into code whose post-loop tail was cold
//     at compile time, falling back to the interpreter and recompiling at
//     the next entry);
//   * terminateIsolate kills a bundle spinning in OSR'd code, poisons the
//     OSR entries, and refuses re-entry;
//   * PromoteJit-while-spinning promotion requests are idempotent per
//     method (the governor-requeue regression fix);
//   * the osr=false runtime switch keeps everything at the fused tier.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "bytecode/builder.h"
#include "exec/engine.h"
#include "exec/jit.h"
#include "exec/quickened.h"
#include "heap/object.h"
#include "osgi/framework.h"
#include "runtime/vm.h"
#include "stdlib/system_library.h"

namespace ijvm {
namespace {

// OSR-behavior tests assert that compilation happens mid-invocation, which
// the -DIJVM_DISABLE_JIT and -DIJVM_DISABLE_OSR builds compile out.
#if defined(IJVM_DISABLE_JIT) || defined(IJVM_DISABLE_OSR)
#define IJVM_REQUIRE_OSR() \
  GTEST_SKIP() << "built with IJVM_DISABLE_JIT or IJVM_DISABLE_OSR"
#else
#define IJVM_REQUIRE_OSR() (void)0
#endif

VmOptions osrOptions() {
  VmOptions opts = VmOptions::isolated();
  opts.exec_engine = ExecEngine::Jit;
  // Production-shaped thresholds: the method must get hot *inside* the
  // invocation (at a 4096-edge batch flush), not at entry.
  opts.fusion_threshold = 256;
  opts.jit_threshold = 2048;
  // Synchronous compiles: this suite pins the exact flush at which the
  // frame transfers, which the background path intentionally decouples
  // (docs/jit.md, "Code lifecycle").
  opts.background_compile = false;
  return opts;
}

struct OsrVm {
  explicit OsrVm(VmOptions opts = osrOptions()) : vm(opts) {
    installSystemLibrary(vm);
    app = vm.registry().newLoader("app");
  }
  void boot() { vm.createIsolate(app, "app"); }

  JMethod* method(const std::string& cls, const std::string& name,
                  const std::string& desc) {
    JClass* c = vm.registry().resolve(app, cls);
    return c == nullptr ? nullptr : c->findMethod(name, desc);
  }

  Value call(const std::string& cls, const std::string& name,
             const std::string& desc, std::vector<Value> args) {
    Value r = vm.callStaticIn(vm.mainThread(), app, cls, name, desc,
                              std::move(args));
    EXPECT_EQ(vm.mainThread()->pending_exception, nullptr)
        << vm.pendingMessage(vm.mainThread());
    return r;
  }

  VM vm;
  ClassLoader* app = nullptr;
};

exec::QCode* qcodeOf(JMethod* m) {
  return static_cast<exec::QCode*>(m->qcode.load());
}

bool waitUntil(i64 timeout_ms, const std::function<bool()>& cond) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

// sum = 0; for (i = 0; i < n; i++) sum += i; return sum
void defineSumLoop(ClassBuilder& cb) {
  auto& m = cb.method("f", "(I)I", ACC_PUBLIC | ACC_STATIC);
  Label head = m.newLabel(), done = m.newLabel();
  m.iconst(0).istore(1);
  m.iconst(0).istore(2);
  m.bind(head).iload(2).iload(0).ifIcmpGe(done);
  m.iload(1).iload(2).iadd().istore(1);
  m.iinc(2, 1).gotoLabel(head);
  m.bind(done).iload(1).ireturn();
}

i32 goldenSum(i32 n) {
  u32 sum = 0;
  for (u32 i = 0; i < static_cast<u32>(n); ++i) sum += i;
  return static_cast<i32>(sum);
}

TEST(Osr, FiresMidInvocationOnSingleHotCall) {
  IJVM_REQUIRE_OSR();
  OsrVm f;
  {
    ClassBuilder cb("app/Loop");
    defineSumLoop(cb);
    f.app->define(cb.build());
  }
  f.boot();

  // ONE call, long enough to cross jit_threshold (2048) at the first
  // 4096-edge batch flush. The invocation must finish in compiled code.
  const i32 n = 100000;
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(n)}).asInt(),
            goldenSum(n));

  JMethod* m = f.method("app/Loop", "f", "(I)I");
  ASSERT_NE(m, nullptr);
  // Compiled during the single invocation: invocation counter still 1.
  EXPECT_EQ(m->profile_invocations.load(), 1u);
  ASSERT_NE(exec::jitCodeOf(m), nullptr)
      << "single hot call should have compiled mid-invocation";
  exec::QCode* qc = qcodeOf(m);
  ASSERT_NE(qc, nullptr);
  EXPECT_GE(qc->osr_entries_taken.load(), 1u)
      << "the invocation should have transferred onto an OSR entry";

  // The tier transition is visible in the disassembly: OSR entry thunks
  // per loop header, and (with fusion available) fused thunks -- the
  // fused-interpreter -> compiled story of docs/jit.md.
  std::string dis = exec::disasmJit(f.vm, m);
  EXPECT_NE(dis.find("osr@pc"), std::string::npos) << dis;
  EXPECT_NE(dis.find("OSR_ENTRY"), std::string::npos) << dis;
#ifndef IJVM_DISABLE_FUSION
  EXPECT_NE(dis.find("ILOAD_ILOAD_IF_ICMPGE_F"), std::string::npos) << dis;
#endif

  // Later calls (now via the compiled entry) stay exact, 0-trip included.
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(0)}).asInt(), 0);
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(1000)}).asInt(),
            goldenSum(1000));
}

TEST(Osr, LocalsAndOperandStackTransferExactly) {
  IJVM_REQUIRE_OSR();
  OsrVm f;
  {
    // A value is parked on the operand stack *across* the loop (depth 1 at
    // the header), and the loop carries an int and a long local -- all of
    // it must transfer bit-exactly into the raw JIT stack at OSR.
    ClassBuilder cb("app/Gold");
    auto& m = cb.method("f", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label head = m.newLabel(), done = m.newLabel();
    m.iconst(12345);             // parked: consumed only after the loop
    m.iconst(0).istore(1);       // sum
    m.lconst(1).lstore(3);       // lacc
    m.iconst(0).istore(2);       // i
    m.bind(head).iload(2).iload(0).ifIcmpGe(done);
    m.iload(1).iconst(31).imul().iload(2).iadd().istore(1);
    m.lload(3).iload(2).i2l().ladd().lstore(3);
    m.iinc(2, 1).gotoLabel(head);
    m.bind(done).iload(1).iadd();  // 12345 + sum
    m.lload(3).l2i().ixor();       // ^ (int)lacc
    m.ireturn();
    f.app->define(cb.build());
  }
  f.boot();

  const i32 n = 60000;
  u32 sum = 0;
  u64 lacc = 1;
  for (u32 i = 0; i < static_cast<u32>(n); ++i) {
    sum = sum * 31u + i;
    lacc += i;
  }
  const i32 golden =
      static_cast<i32>((12345u + sum) ^ static_cast<u32>(lacc));

  EXPECT_EQ(f.call("app/Gold", "f", "(I)I", {Value::ofInt(n)}).asInt(), golden);

  JMethod* m = f.method("app/Gold", "f", "(I)I");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->profile_invocations.load(), 1u);
  ASSERT_NE(exec::jitCodeOf(m), nullptr);
  exec::QCode* qc = qcodeOf(m);
  ASSERT_NE(qc, nullptr);
  EXPECT_GE(qc->osr_entries_taken.load(), 1u);
  // The OSR entry map records the nonzero operand depth of the header.
  std::string dis = exec::disasmJit(f.vm, m);
  EXPECT_NE(dis.find("depth=1"), std::string::npos) << dis;
}

TEST(Osr, DeoptRoundTripAfterOsr) {
  IJVM_REQUIRE_OSR();
  OsrVm f;
  {
    // The post-loop tail reads a static that cannot have quickened when
    // the mid-invocation compile runs (this is the method's FIRST
    // invocation): the tail compiles as a deopt thunk, so leaving the loop
    // falls back into the interpreter, which resolves the static and
    // finishes -- the OSR -> deopt -> interpreter round-trip.
    ClassBuilder cb("app/Tail");
    cb.field("s", "I", ACC_PUBLIC | ACC_STATIC);
    auto& clinit = cb.method("<clinit>", "()V", ACC_STATIC);
    clinit.iconst(77).putstatic("app/Tail", "s", "I").ret();
    auto& m = cb.method("f", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label head = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(1);
    m.iconst(0).istore(2);
    m.bind(head).iload(2).iload(0).ifIcmpGe(done);
    m.iload(1).iload(2).iadd().istore(1);
    m.iinc(2, 1).gotoLabel(head);
    m.bind(done).iload(1).getstatic("app/Tail", "s", "I").iadd().ireturn();
    f.app->define(cb.build());
  }
  f.boot();

  const i32 n = 100000;
  EXPECT_EQ(f.call("app/Tail", "f", "(I)I", {Value::ofInt(n)}).asInt(),
            goldenSum(n) + 77);

  JMethod* m = f.method("app/Tail", "f", "(I)I");
  ASSERT_NE(m, nullptr);
  exec::QCode* qc = qcodeOf(m);
  ASSERT_NE(qc, nullptr);
  EXPECT_GE(qc->osr_entries_taken.load(), 1u) << "OSR should have fired";
  EXPECT_GE(qc->jit_deopts.load(), 1u) << "cold tail should have deopted";
  EXPECT_EQ(exec::jitCodeOf(m), nullptr)
      << "deopt should have invalidated the OSR'd code";

  // Next entry recompiles with the now-quickened tail bound directly; no
  // further deopts on the steady state.
  EXPECT_EQ(f.call("app/Tail", "f", "(I)I", {Value::ofInt(n)}).asInt(),
            goldenSum(n) + 77);
  ASSERT_NE(exec::jitCodeOf(m), nullptr);
  const u32 deopts = qc->jit_deopts.load();
  EXPECT_EQ(f.call("app/Tail", "f", "(I)I", {Value::ofInt(1000)}).asInt(),
            goldenSum(1000) + 77);
  EXPECT_EQ(qc->jit_deopts.load(), deopts);
  std::string dis = exec::disasmJit(f.vm, m);
  EXPECT_NE(dis.find("app/Tail.s"), std::string::npos) << dis;
}

// A bundle whose activator spawns a thread that makes ONE call into an
// infinite loop: the only way that thread ever reaches compiled code is
// on-stack replacement.
BundleDescriptor spinnerBundle() {
  BundleDescriptor desc;
  desc.symbolic_name = "osr-spinner";
  {
    ClassBuilder cb("sp/Main");
    auto& m = cb.method("spinForever", "()I", ACC_PUBLIC | ACC_STATIC);
    Label head = m.newLabel(), done = m.newLabel();
    m.iconst(1).istore(0);
    m.bind(head).iload(0).ifeq(done);  // never true
    m.iconst(1).istore(0);
    m.gotoLabel(head);
    m.bind(done).iload(0).ireturn();
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("sp/Spin");
    cb.addInterface("java/lang/Runnable");
    auto& run = cb.method("run", "()V");
    run.invokestatic("sp/Main", "spinForever", "()I").pop();
    run.ret();
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("sp/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.newObject("java/lang/Thread").dup();
    start.newDefault("sp/Spin");
    start.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
    start.invokevirtual("java/lang/Thread", "start", "()V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    desc.classes.push_back(cb.build());
  }
  desc.activator = "sp/Activator";
  return desc;
}

TEST(Osr, TerminateIsolateKillsBundleSpinningInOsrCode) {
  IJVM_REQUIRE_OSR();
  VmOptions opts = osrOptions();
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);
  Bundle* b = fw.install(spinnerBundle());
  fw.start(b);

  JMethod* spin = vm.registry()
                      .resolve(b->loader(), "sp/Main")
                      ->findMethod("spinForever", "()I");
  ASSERT_NE(spin, nullptr);

  // The spinning thread never returns from its single call, so reaching
  // compiled code proves the fused frame was on-stack-replaced.
  ASSERT_TRUE(waitUntil(5000, [&] {
    exec::QCode* qc = qcodeOf(spin);
    return exec::jitCodeOf(spin) != nullptr && qc != nullptr &&
           qc->osr_entries_taken.load() >= 1;
  })) << "spinForever() never OSR'd into compiled code";
  EXPECT_EQ(spin->profile_invocations.load(), 1u);

  // Kill the bundle: entry + OSR entry points are patched under
  // stop-the-world, and the thread inside compiled code is interrupted at
  // its next back-edge poll -- the paper's patched-entry-point design
  // exercised on the hottest real path.
  fw.killBundle(b);
  EXPECT_TRUE(waitUntil(5000, [&] {
    return b->isolate()->stats.live_threads.load() == 0;
  })) << "thread spinning in OSR'd code survived termination";

  std::string dis = exec::disasmJit(vm, spin);
  EXPECT_NE(dis.find("entry POISONED"), std::string::npos) << dis;
  const size_t osr_pos = dis.find("osr@pc");
  ASSERT_NE(osr_pos, std::string::npos) << dis;
  EXPECT_NE(dis.find("POISONED", osr_pos), std::string::npos)
      << "OSR entries must be poisoned too:\n"
      << dis;

  // Re-entry is refused at every door.
  JThread* t = vm.mainThread();
  vm.callStaticIn(t, b->loader(), "sp/Main", "spinForever", "()I", {});
  ASSERT_NE(t->pending_exception, nullptr);
  EXPECT_NE(vm.pendingMessage(t).find("StoppedIsolate"), std::string::npos);
  vm.clearPending(t);
  vm.shutdownAllThreads();
}

TEST(Osr, GovernorPromoteJitWhileSpinningIsIdempotent) {
  IJVM_REQUIRE_OSR();
  // Engine self-promotion off: only PromoteJit-style queue requests can
  // compile. The regression (docs/jit.md "Promotion"): a method promoted
  // while already executing must compile exactly once -- not once per
  // back-edge batch flush, and re-fired promotion requests for an
  // already-compiled method must be no-ops.
  VmOptions opts = osrOptions();
  opts.jit_threshold = ~0ull;
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);
  Bundle* b = fw.install(spinnerBundle());
  fw.start(b);

  JMethod* spin = vm.registry()
                      .resolve(b->loader(), "sp/Main")
                      ->findMethod("spinForever", "()I");
  ASSERT_NE(spin, nullptr);
  ASSERT_TRUE(waitUntil(5000, [&] {
    return spin->profile_loop_edges.load() > 8192;
  })) << "spinner never got going";
  EXPECT_EQ(exec::jitCodeOf(spin), nullptr) << "self-promotion should be off";

  // The governor's PromoteJit action, fired mid-spin.
  exec::enqueueLoaderForJit(vm, b->loader(), /*min_hotness=*/0);
  ASSERT_TRUE(waitUntil(5000, [&] {
    exec::QCode* qc = qcodeOf(spin);
    return exec::jitCodeOf(spin) != nullptr && qc != nullptr &&
           qc->osr_entries_taken.load() >= 1;
  })) << "PromoteJit request was not serviced at the spinning back-edge";

  auto st = std::static_pointer_cast<exec::ExecState>(
      vm.getExtension(exec::kStateKey));
  ASSERT_NE(st, nullptr);
  // Let any stragglers from the first request compile, then snapshot.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const size_t codes_after_first = [&] {
    std::lock_guard<std::mutex> lock(st->mutex);
    return st->jit_codes.size();
  }();

  // Re-fire the promotion every "tick" across thousands of batch flushes:
  // no JitCode may be rebuilt.
  for (int tick = 0; tick < 10; ++tick) {
    exec::enqueueLoaderForJit(vm, b->loader(), /*min_hotness=*/0);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  {
    std::lock_guard<std::mutex> lock(st->mutex);
    EXPECT_EQ(st->jit_codes.size(), codes_after_first)
        << "repeated PromoteJit requests recompiled an already-compiled "
           "method";
  }

  fw.killBundle(b);
  EXPECT_TRUE(waitUntil(5000, [&] {
    return b->isolate()->stats.live_threads.load() == 0;
  }));
  vm.shutdownAllThreads();
}

TEST(Osr, RuntimeSwitchOffStaysAtFusedTier) {
  // Runs in every build flavor: with osr=false (or the path compiled out)
  // a single hot call must finish in the interpreter tiers.
  VmOptions opts = osrOptions();
  opts.osr = false;
  OsrVm f(opts);
  {
    ClassBuilder cb("app/Loop");
    defineSumLoop(cb);
    f.app->define(cb.build());
  }
  f.boot();

  const i32 n = 100000;
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(n)}).asInt(),
            goldenSum(n));
  JMethod* m = f.method("app/Loop", "f", "(I)I");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(exec::jitCodeOf(m), nullptr)
      << "osr=false must not compile mid-invocation";
  if (exec::QCode* qc = qcodeOf(m)) {
    EXPECT_EQ(qc->osr_entries_taken.load(), 0u);
  }
#if !defined(IJVM_DISABLE_JIT)
  // The entry-promotion path is untouched by the switch: the second call
  // compiles at entry as before.
  EXPECT_EQ(f.call("app/Loop", "f", "(I)I", {Value::ofInt(n)}).asInt(),
            goldenSum(n));
  EXPECT_NE(exec::jitCodeOf(m), nullptr);
#endif
}

// Regression for the ResourceStats observability item (ROADMAP): a
// refused OSR transfer -- compiled code exists, but the live frame cannot
// enter it at the flushed loop header -- must be counted per method and
// per isolate instead of silently interpreting on.
//
// The hand-crafted stream (the only known way to provoke a refusal): the
// loop header is reachable at depth 0 on the fast path, but the executing
// path parks an extra value on the operand stack across the whole loop.
// The method is compiled *mid-invocation* by a native trigger while the
// cold call after it has not quickened yet, so the depth analysis never
// sees the deep path (the call is compile-terminal) and the entry map
// records depth 0 -- every subsequent back-edge batch flush then offers a
// depth-1 frame and is refused. The bytecode fails stack-height merging
// (depth 0 vs 1 at the header), so the verifier is off: this shape cannot
// come from verified code, which is exactly why the ROADMAP called it
// "never observed outside hand-crafted streams".
TEST(Osr, RefusedTransferIsCountedInResourceStats) {
  IJVM_REQUIRE_OSR();
  VmOptions opts = osrOptions();
  opts.verify = false;
  OsrVm f(opts);
  {
    ClassBuilder cb("app/T");
    cb.nativeMethod("trigger", "()V", ACC_STATIC);
    auto& cold = cb.method("coldPush", "()I", ACC_PUBLIC | ACC_STATIC);
    cold.iconst(7).ireturn();
    auto& m = cb.method("f", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label fast = m.newLabel(), head = m.newLabel();
    m.iload(0).ifeq(fast);                       // n == 0: enter at depth 0
    m.invokestatic("app/T", "trigger", "()V");   // compiles f right here
    m.invokestatic("app/T", "coldPush", "()I");  // cold at compile time
    m.gotoLabel(head);                           // enter loop at depth 1
    m.bind(fast);
    m.bind(head);
    m.iinc(1, 1);
    m.iload(1).iload(0).ifIcmpLt(head);  // back-edge; flushes try OSR
    m.iload(1).ireturn();                // parked value discarded with frame
    f.app->define(cb.build());
  }
  f.boot();
  JMethod* fm = f.method("app/T", "f", "(I)I");
  JMethod* trig = f.method("app/T", "trigger", "()V");
  ASSERT_NE(fm, nullptr);
  ASSERT_NE(trig, nullptr);
  trig->native = [fm](NativeCtx& ctx) -> Value {
    exec::enqueueForJit(ctx.vm, fm);
    exec::drainJitQueue(ctx.vm);  // synchronous: code exists on return
    return {};
  };

  const i32 n = 3 * 4096 + 512;  // several batch flushes inside the loop
  EXPECT_EQ(f.call("app/T", "f", "(I)I", {Value::ofInt(n)}).asInt(), n);

  // Compiled at the trigger, never entered, never invalidated -- and every
  // flush refused the transfer.
  ASSERT_NE(exec::jitCodeOf(fm), nullptr);
  exec::QCode* qc = qcodeOf(fm);
  ASSERT_NE(qc, nullptr);
  EXPECT_EQ(qc->osr_entries_taken.load(), 0u);
  EXPECT_GE(qc->osr_refused_transfers.load(), 3u);
  std::string dis = exec::disasmJit(f.vm, fm);
  EXPECT_NE(dis.find("depth=0"), std::string::npos) << dis;

  Isolate* iso = f.vm.isolateById(0);
  ASSERT_NE(iso, nullptr);
  EXPECT_GE(iso->stats.osr_refused_transfers.load(), 3u);
  EXPECT_EQ(f.vm.reportFor(iso).osr_refused_transfers,
            iso->stats.osr_refused_transfers.load());
}

}  // namespace
}  // namespace ijvm
