// Robustness suite (paper section 4.3): all eight attacks, in both modes.
//
// Expected outcomes follow the paper's table:
//   * shared mode (Sun JVM / LadyVM): every attack corrupts, freezes or
//     aborts the platform (victim affected and/or attack unstoppable);
//   * isolated mode (I-JVM): the victim is unaffected (or regains control),
//     the administrator can identify the offender from per-isolate
//     statistics, and killing the bundle stops the attack.
#include <gtest/gtest.h>

#include "workloads/attacks.h"

namespace ijvm {
namespace {

class AttackParity : public ::testing::TestWithParam<int> {};

TEST_P(AttackParity, IsolatedModeContainsTheAttack) {
  auto id = static_cast<AttackId>(GetParam());
  AttackOutcome out = runAttack(id, /*isolated=*/true);
  EXPECT_TRUE(out.victim_unaffected) << out.detail;
  EXPECT_TRUE(out.attacker_identified) << out.detail;
  EXPECT_TRUE(out.attacker_stopped) << out.detail;
  EXPECT_TRUE(out.protectedOutcome()) << out.detail;
}

TEST_P(AttackParity, SharedModeIsVulnerable) {
  auto id = static_cast<AttackId>(GetParam());
  AttackOutcome out = runAttack(id, /*isolated=*/false);
  // On the unprotected platform the attack succeeds: either the victim is
  // harmed or the attack cannot be stopped (usually both).
  EXPECT_FALSE(out.protectedOutcome()) << out.detail;
  // Termination is never available on the baseline.
  EXPECT_FALSE(out.attacker_stopped) << out.detail;
  EXPECT_FALSE(out.attacker_identified) << out.detail;
}

INSTANTIATE_TEST_SUITE_P(AllAttacks, AttackParity, ::testing::Range(0, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return attackName(static_cast<AttackId>(info.param));
                         });

}  // namespace
}  // namespace ijvm
