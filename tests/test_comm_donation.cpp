// Zero-copy donation protocol (docs/comm.md): property harness over seeded
// random object graphs -- cycles, shared subobjects, large primitive
// arrays, interned strings -- round-tripped through transferGraph with
// donation forced on and off. Receiver-visible values must be identical
// either way, ResourceStats bytes must conserve exactly (sender and
// receiver donation deltas sum to zero), donated buffers must be
// GC-scanned in the receiver's heap, and termination racing an in-flight
// donation (either kill order) must neither leak charge nor leave a
// dangling cross-isolate reference. The termination races also run under
// the TSan CI leg.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bytecode/builder.h"
#include "comm/serializer.h"
#include "heap/object.h"
#include "stdlib/system_library.h"
#include "support/rng.h"
#include "support/strf.h"

namespace ijvm {
namespace {

// Order-insensitive structural checksum of a receiver-visible graph:
// node identity is replaced by discovery order, so a donated original and
// a deep copy of the same message hash identically, while any difference
// in values, shape or sharing changes the hash.
i64 graphChecksum(Object* root) {
  std::unordered_map<Object*, i64> ids;
  i64 h = 1469598103934665603LL;
  auto mix = [&h](i64 v) { h = (h ^ v) * 1099511628211LL; };
  std::function<void(Object*)> go = [&](Object* o) {
    if (o == nullptr) {
      mix(-1);
      return;
    }
    if (auto it = ids.find(o); it != ids.end()) {
      mix(-2);
      mix(it->second);
      return;
    }
    ids.emplace(o, static_cast<i64>(ids.size()));
    mix(static_cast<i64>(o->kind));
    switch (o->kind) {
      case ObjKind::String:
        mix(static_cast<i64>(o->str().size()));
        for (char c : o->str()) mix(c);
        break;
      case ObjKind::ArrayInt:
        mix(o->length);
        for (i32 i = 0; i < o->length; ++i) mix(o->intElems()[i]);
        break;
      case ObjKind::ArrayLong:
        mix(o->length);
        for (i32 i = 0; i < o->length; ++i) mix(o->longElems()[i]);
        break;
      case ObjKind::ArrayDouble:
        mix(o->length);
        for (i32 i = 0; i < o->length; ++i) {
          i64 bits;
          std::memcpy(&bits, &o->doubleElems()[i], sizeof(bits));
          mix(bits);
        }
        break;
      case ObjKind::ArrayRef:
        mix(o->length);
        for (i32 i = 0; i < o->length; ++i) go(o->refElems()[i]);
        break;
      case ObjKind::Plain:
        mix(o->cls->instance_slots);
        for (i32 i = 0; i < o->cls->instance_slots; ++i) {
          Value v = o->fields()[i];
          mix(static_cast<i64>(v.kind));
          if (v.kind == Kind::Ref) {
            go(v.ref);
          } else {
            mix(v.i);
          }
        }
        break;
      case ObjKind::Native:
        mix(-3);
        break;
    }
  };
  go(root);
  return h;
}

// Asserts every node of a received graph is keyed to `iso_id`: donated
// nodes were re-keyed, copied nodes were allocated by the receiver. A
// node still keyed to another isolate would be a dangling cross-isolate
// reference (docs/comm.md, "Eligibility").
void expectAllOwnedBy(Object* root, i32 iso_id) {
  std::unordered_map<Object*, bool> seen;
  std::function<void(Object*)> go = [&](Object* o) {
    if (o == nullptr || seen.count(o) != 0) return;
    seen.emplace(o, true);
    EXPECT_EQ(o->creator_isolate, iso_id);
    o->traceRefs(go);
  };
  go(root);
}

// Per-round-trip observations compared between donation modes.
struct RoundTrip {
  i64 checksum = 0;
  TransferStats stats;
  u64 sender_bytes = 0, receiver_bytes = 0;
  u64 sender_objects = 0, receiver_objects = 0;
};

struct DonationFixture : ::testing::Test {
  void boot(bool zero_copy) {
    vm.reset();
    VmOptions opts;
    opts.comm_zero_copy = zero_copy;
    // No implicit GC: collections happen only where the tests invoke them
    // (or where a memory-limit check forces one), so the termination races
    // below exercise donation-vs-terminate interleavings, not allocation
    // noise.
    opts.gc_threshold = 256u << 20;
    vm = std::make_unique<VM>(opts);
    installSystemLibrary(*vm);
    // The first isolate is the privileged Isolate0 hosting the main
    // thread (it issues the kills); sender and receiver are separate
    // unprivileged isolates driven through attached thread records.
    loader0 = vm->registry().newLoader("platform");
    iso0 = vm->createIsolate(loader0, "platform");
    loader_s = vm->registry().newLoader("sender");
    iso_s = vm->createIsolate(loader_s, "sender");
    loader_r = vm->registry().newLoader("receiver");
    iso_r = vm->createIsolate(loader_r, "receiver");
    send_t = vm->attachThread("send", iso_s);
    recv_t = vm->attachThread("recv", iso_r);

    ClassBuilder cb("d/Node");
    cb.field("value", "I");
    cb.field("label", "Ljava/lang/String;");
    cb.field("payload", "[I");
    cb.field("left", "Ld/Node;");
    cb.field("right", "Ld/Node;");
    node_cls = loader0->define(cb.build());
    ASSERT_NE(node_cls, nullptr);
    value_f = node_cls->findField("value");
    label_f = node_cls->findField("label");
    payload_f = node_cls->findField("payload");
    left_f = node_cls->findField("left");
    right_f = node_cls->findField("right");
  }
  void TearDown() override { vm.reset(); }

  // Seeded random message graph built by `t` (charged to its isolate): a
  // tree of d/Node with random sharing and back-edges (cycles), random
  // int[] payloads (occasionally large), random SSO-sized strings
  // (occasionally interned in the builder's isolate -- interned-table
  // entries are sender GC roots, so the termination tests that expect the
  // sender's charge to drain to zero pass allow_intern=false). Tolerates
  // allocation failure (returns what it has) so it can keep running while
  // its isolate is being terminated.
  Object* genGraph(JThread* t, Rng& rng, LocalRootScope& roots, int budget,
                   bool allow_intern = true) {
    std::vector<Object*> nodes;
    std::function<Object*(int)> gen = [&](int depth) -> Object* {
      if (depth > 4 || static_cast<int>(nodes.size()) >= budget) return nullptr;
      if (!nodes.empty() && rng.nextBounded(5) == 0) {
        // Shared subobject or back-edge (cycle).
        return nodes[rng.nextBounded(nodes.size())];
      }
      Object* n = roots.add(vm->allocObject(t, node_cls));
      if (n == nullptr) return nullptr;
      nodes.push_back(n);
      n->fields()[value_f->slot] = Value::ofInt(rng.nextInt());
      // SSO-sized strings so copy-mode duplicates have identical byte_size
      // (allocString charges the std::string capacity).
      std::string label =
          strf("s%llx", static_cast<unsigned long long>(rng.nextBounded(1u << 20)));
      const bool intern = allow_intern && rng.nextBounded(4) == 0;
      Object* s = intern ? vm->internString(t, label)
                         : vm->newStringObject(t, label);
      if (s != nullptr) {
        roots.add(s);
        n->fields()[label_f->slot] = Value::ofRef(s);
      }
      const i32 len = rng.nextBounded(10) == 0
                          ? 1024
                          : static_cast<i32>(rng.nextBounded(64));
      Object* arr =
          vm->allocArrayObject(t, vm->registry().arrayClass("[I"), len);
      if (arr != nullptr) {
        roots.add(arr);
        for (i32 i = 0; i < len; ++i) arr->intElems()[i] = rng.nextInt();
        n->fields()[payload_f->slot] = Value::ofRef(arr);
      }
      n->fields()[left_f->slot] = Value::ofRef(gen(depth + 1));
      n->fields()[right_f->slot] = Value::ofRef(gen(depth + 1));
      return n;
    };
    return gen(0);
  }

  // One seeded round trip in a fresh VM: build in the sender, transfer to
  // the receiver, check mid-flight conservation, GC with only the
  // receiver holding the graph, record the post-GC charges.
  void runTrip(bool zero_copy, u64 seed, RoundTrip* out) {
    boot(zero_copy);
    Rng rng(seed);
    GlobalRef* kept = nullptr;
    {
      LocalRootScope roots(send_t);
      Object* msg = genGraph(send_t, rng, roots, 24);
      ASSERT_NE(msg, nullptr);
      Object* got = transferGraph(*vm, recv_t, iso_s, msg, &out->stats);
      ASSERT_EQ(recv_t->pending_exception, nullptr) << vm->pendingMessage(recv_t);
      ASSERT_NE(got, nullptr);
      out->checksum = graphChecksum(got);
      expectAllOwnedBy(got, iso_r->id);
      kept = vm->addGlobalRef(got, iso_r);
      // Exact conservation before any GC: the signed deltas sum to zero
      // across the platform and the in/out totals agree.
      i64 delta_sum = 0;
      for (Isolate* iso : vm->isolates()) {
        delta_sum += iso->stats.donated_bytes_delta.load();
      }
      EXPECT_EQ(delta_sum, 0);
      EXPECT_EQ(iso_s->stats.bytes_donated_out.load(),
                iso_r->stats.bytes_donated_in.load());
      EXPECT_EQ(iso_s->stats.bytes_donated_out.load(), out->stats.bytes_donated);
      EXPECT_EQ(iso_s->stats.objects_donated_out.load(),
                out->stats.objects_donated);
    }
    // The sender relinquished the message (its local roots are gone); after
    // a GC only the receiver-held graph survives and the recomputed charges
    // must not depend on the donation mode.
    vm->collectGarbage(vm->mainThread(), nullptr);
    out->sender_bytes = iso_s->stats.bytes_charged.load();
    out->receiver_bytes = iso_r->stats.bytes_charged.load();
    out->sender_objects = iso_s->stats.objects_charged.load();
    out->receiver_objects = iso_r->stats.objects_charged.load();
    EXPECT_EQ(iso_s->stats.donated_bytes_delta.load(), 0);  // reset by GC
    EXPECT_EQ(iso_r->stats.donated_bytes_delta.load(), 0);
    vm->removeGlobalRef(kept);
  }

  std::unique_ptr<VM> vm;
  ClassLoader* loader0 = nullptr;
  ClassLoader* loader_s = nullptr;
  ClassLoader* loader_r = nullptr;
  Isolate* iso0 = nullptr;
  Isolate* iso_s = nullptr;
  Isolate* iso_r = nullptr;
  JThread* send_t = nullptr;
  JThread* recv_t = nullptr;
  JClass* node_cls = nullptr;
  JField* value_f = nullptr;
  JField* label_f = nullptr;
  JField* payload_f = nullptr;
  JField* left_f = nullptr;
  JField* right_f = nullptr;
};

TEST_F(DonationFixture, SeededGraphsAreIdenticalWithDonationOnAndOff) {
  // The same seed must produce a byte-identical receiver-visible graph and
  // identical post-GC charges whether payloads were donated or copied.
  constexpr int kSeeds = 25;
  u64 donated_total = 0;
  for (int s = 0; s < kSeeds; ++s) {
    SCOPED_TRACE(strf("seed=%d", s));
    RoundTrip on, off;
    runTrip(/*zero_copy=*/true, 0xC0FFEE00ull + s, &on);
    runTrip(/*zero_copy=*/false, 0xC0FFEE00ull + s, &off);
    EXPECT_EQ(on.checksum, off.checksum);
    EXPECT_EQ(off.stats.objects_donated, 0u);
    EXPECT_EQ(on.sender_bytes, off.sender_bytes);
    EXPECT_EQ(on.receiver_bytes, off.receiver_bytes);
    EXPECT_EQ(on.sender_objects, off.sender_objects);
    EXPECT_EQ(on.receiver_objects, off.receiver_objects);
    donated_total += on.stats.objects_donated;
  }
#ifdef IJVM_DISABLE_ZERO_COPY
  // Compile-out leg: the mode differential collapses to copy-vs-copy.
  EXPECT_EQ(donated_total, 0u);
#else
  // The harness must actually exercise donation, not just the fallback.
  EXPECT_GT(donated_total, 0u);
#endif
}

TEST_F(DonationFixture, DonatedBuffersAreGcScannedInTheReceiversHeap) {
#ifdef IJVM_DISABLE_ZERO_COPY
  GTEST_SKIP() << "zero-copy donation compiled out";
#endif
  boot(/*zero_copy=*/true);
  Object* donated_arr = nullptr;
  GlobalRef* kept = nullptr;
  {
    LocalRootScope roots(send_t);
    Object* arr = roots.add(
        vm->allocArrayObject(send_t, vm->registry().arrayClass("[I"), 1024));
    ASSERT_NE(arr, nullptr);
    for (i32 i = 0; i < 1024; ++i) arr->intElems()[i] = i * 3;
    TransferStats stats;
    Object* got = transferGraph(*vm, recv_t, iso_s, arr, &stats);
    ASSERT_EQ(got, arr);  // donated, not copied
    EXPECT_EQ(stats.objects_donated, 1u);
    EXPECT_EQ(stats.bytes_donated, arr->byte_size);
    donated_arr = got;
    kept = vm->addGlobalRef(got, iso_r);
  }
  // The sender dropped every reference; the donated buffer must survive
  // the collection through the receiver's root alone, charged to the
  // receiver, payload intact.
  vm->collectGarbage(vm->mainThread(), nullptr);
  bool alive = false;
  vm->heap().forEachObject([&](Object* o) {
    if (o == donated_arr) alive = true;
  });
  ASSERT_TRUE(alive);
  EXPECT_EQ(donated_arr->charged_isolate, iso_r->id);
  EXPECT_EQ(donated_arr->creator_isolate, iso_r->id);
  for (i32 i = 0; i < 1024; ++i) ASSERT_EQ(donated_arr->intElems()[i], i * 3);
  // Once the receiver drops it, the next sweep reclaims it.
  vm->removeGlobalRef(kept);
  vm->collectGarbage(vm->mainThread(), nullptr);
  alive = false;
  vm->heap().forEachObject([&](Object* o) {
    if (o == donated_arr) alive = true;
  });
  EXPECT_FALSE(alive);
}

TEST_F(DonationFixture, DonationMovesTheMemoryLimitCharge) {
  // A sender at its memory limit sheds bytes by donating; the receiver
  // inherits them immediately -- before any accounting pass re-derives the
  // charges (vm.cpp checkMemoryLimits folds donated_bytes_delta in).
#ifdef IJVM_DISABLE_ZERO_COPY
  GTEST_SKIP() << "zero-copy donation compiled out";
#endif
  boot(/*zero_copy=*/true);
  iso_s->memory_limit = 64 * 1024;
  iso_r->memory_limit = 64 * 1024;
  GlobalRef* kept = nullptr;
  u64 bytes = 0;
  {
    LocalRootScope roots(send_t);
    Object* arr = roots.add(vm->allocArrayObject(
        send_t, vm->registry().arrayClass("[I"), 12 * 1024));
    ASSERT_NE(arr, nullptr);
    bytes = arr->byte_size;
    TransferStats stats;
    Object* got = transferGraph(*vm, recv_t, iso_s, arr, &stats);
    ASSERT_EQ(got, arr);
    EXPECT_EQ(iso_s->stats.donated_bytes_delta.load(), -static_cast<i64>(bytes));
    EXPECT_EQ(iso_r->stats.donated_bytes_delta.load(), static_cast<i64>(bytes));
    kept = vm->addGlobalRef(got, iso_r);
  }
  // The receiver's held estimate now includes the donated bytes: an
  // allocation that would cross its limit must fail even though the
  // receiver itself allocated almost nothing. (The limit check forces a
  // GC first; the recomputed charges bill the donated array to the
  // receiver all the same.)
  Object* too_much = vm->allocArrayObject(
      recv_t, vm->registry().arrayClass("[I"), 6 * 1024);
  EXPECT_EQ(too_much, nullptr);
  ASSERT_NE(recv_t->pending_exception, nullptr);
  EXPECT_NE(vm->pendingMessage(recv_t).find("OutOfMemoryError"),
            std::string::npos);
  vm->clearPending(recv_t);
  // The sender was credited: it can fill the shed space again.
  {
    LocalRootScope roots(send_t);
    Object* refill = roots.add(vm->allocArrayObject(
        send_t, vm->registry().arrayClass("[I"), 12 * 1024));
    EXPECT_NE(refill, nullptr) << vm->pendingMessage(send_t);
  }
  vm->removeGlobalRef(kept);
}

TEST_F(DonationFixture, IneligibleNodesFallBackToCopy) {
  boot(/*zero_copy=*/true);
  LocalRootScope roots(send_t);

  // Interned strings stay in the sender's table (its `==` semantics and
  // GC roots depend on the original object).
  Object* interned = vm->internString(send_t, "interned-label");
  ASSERT_NE(interned, nullptr);
  TransferStats s1;
  Object* got1 = transferGraph(*vm, recv_t, iso_s, interned, &s1);
  ASSERT_NE(got1, nullptr);
  EXPECT_NE(got1, interned);
  EXPECT_EQ(s1.objects_donated, 0u);
  EXPECT_EQ(VM::stringValue(got1), "interned-label");

  // A monitor-bearing array is visibly aliased (someone synchronized on
  // it), so ownership cannot move.
  Object* locked = roots.add(
      vm->allocArrayObject(send_t, vm->registry().arrayClass("[I"), 16));
  ASSERT_NE(locked, nullptr);
  vm->monitorOf(locked);
  TransferStats s2;
  Object* got2 = transferGraph(*vm, recv_t, iso_s, locked, &s2);
  ASSERT_NE(got2, nullptr);
  EXPECT_NE(got2, locked);
  EXPECT_EQ(s2.objects_donated, 0u);

  // An array the claimed sender did not create cannot be donated on its
  // behalf.
  Object* foreign = roots.add(vm->allocArrayObject(
      vm->mainThread(), vm->registry().arrayClass("[I"), 16));
  ASSERT_NE(foreign, nullptr);
  TransferStats s3;
  Object* got3 = transferGraph(*vm, recv_t, iso_s, foreign, &s3);
  ASSERT_NE(got3, nullptr);
  EXPECT_NE(got3, foreign);
  EXPECT_EQ(s3.objects_donated, 0u);

  // Plain objects always copy (mutable structure), but eligible leaves
  // hanging off them still donate: the received node is a fresh copy whose
  // payload field aliases the donated original.
  Object* n = roots.add(vm->allocObject(send_t, node_cls));
  ASSERT_NE(n, nullptr);
  Object* arr = roots.add(
      vm->allocArrayObject(send_t, vm->registry().arrayClass("[I"), 8));
  ASSERT_NE(arr, nullptr);
  n->fields()[payload_f->slot] = Value::ofRef(arr);
  TransferStats s4;
  Object* got4 = transferGraph(*vm, recv_t, iso_s, n, &s4);
  ASSERT_NE(got4, nullptr);
  EXPECT_NE(got4, n);
#ifdef IJVM_DISABLE_ZERO_COPY
  EXPECT_NE(got4->fields()[payload_f->slot].asRef(), arr);
  EXPECT_EQ(s4.objects_donated, 0u);
  EXPECT_EQ(s4.objects_copied, 2u);  // node and payload both copy
#else
  EXPECT_EQ(got4->fields()[payload_f->slot].asRef(), arr);
  EXPECT_EQ(s4.objects_donated, 1u);  // the int[]; label/left/right are null
  EXPECT_EQ(s4.objects_copied, 1u);   // the d/Node itself
#endif
}

TEST_F(DonationFixture, ZeroCopyOffNeverDonates) {
  boot(/*zero_copy=*/false);
  LocalRootScope roots(send_t);
  Object* arr = roots.add(
      vm->allocArrayObject(send_t, vm->registry().arrayClass("[I"), 256));
  ASSERT_NE(arr, nullptr);
  TransferStats stats;
  Object* got = transferGraph(*vm, recv_t, iso_s, arr, &stats);
  ASSERT_NE(got, nullptr);
  EXPECT_NE(got, arr);
  EXPECT_EQ(stats.objects_donated, 0u);
  EXPECT_EQ(iso_s->stats.objects_donated_out.load(), 0u);
  EXPECT_EQ(iso_r->stats.objects_donated_in.load(), 0u);
  EXPECT_EQ(iso_s->stats.donated_bytes_delta.load(), 0);
  EXPECT_EQ(iso_r->stats.donated_bytes_delta.load(), 0);
}

// ---- termination racing an in-flight donation, both kill orders ----
// These run under the TSan CI leg (.github/workflows/ci.yml).

TEST_F(DonationFixture, SenderKilledMidStreamLeaksNoChargeAndNoForeignRefs) {
  boot(/*zero_copy=*/true);
  constexpr int kMessages = 400;
  std::atomic<int> sent{0};
  std::vector<GlobalRef*> received;
  std::mutex received_m;

  std::thread pump([&] {
    // Both endpoint records belong to this OS thread: build each message
    // in the sender isolate, transfer it into the receiver isolate, keep
    // every 16th received graph alive. No interning (see genGraph).
    JThread* st = vm->attachThread("pump-send", iso_s);
    JThread* rt = vm->attachThread("pump-recv", iso_r);
    Rng rng(0xFEEDFACEull);
    for (int i = 0; i < kMessages; ++i) {
      LocalRootScope roots(st);
      Object* msg = genGraph(st, rng, roots, 6, /*allow_intern=*/false);
      if (msg != nullptr) {
        TransferStats stats;
        Object* got = transferGraph(*vm, rt, iso_s, msg, &stats);
        if (got != nullptr && (i % 16) == 0) {
          std::lock_guard<std::mutex> lock(received_m);
          received.push_back(vm->addGlobalRef(got, iso_r));
        }
      }
      vm->clearPending(st);
      vm->clearPending(rt);
      sent.fetch_add(1, std::memory_order_release);
    }
    vm->detachThread(rt);
    vm->detachThread(st);
  });

  // Kill the sender mid-stream (the main thread lives in the privileged
  // Isolate0), racing terminateIsolate's stop-the-world against the
  // pump's per-node counted donation brackets.
  while (sent.load(std::memory_order_acquire) < kMessages / 4) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(vm->terminateIsolate(vm->mainThread(), iso_s));
  pump.join();

  // Conservation survived the race: the signed deltas still sum to zero
  // and the monotonic in/out totals agree.
  i64 delta_sum = 0;
  for (Isolate* iso : vm->isolates()) {
    delta_sum += iso->stats.donated_bytes_delta.load();
  }
  EXPECT_EQ(delta_sum, 0);
  EXPECT_EQ(iso_s->stats.bytes_donated_out.load(),
            iso_r->stats.bytes_donated_in.load());
  EXPECT_EQ(iso_s->stats.objects_donated_out.load(),
            iso_r->stats.objects_donated_in.load());

  // Killed-bundle observability: the report is still served and the
  // isolate is Terminating or Dead, never Active again.
  EXPECT_NE(vm->reportFor(iso_s).state, IsolateState::Active);

  // No dangling cross-isolate references: every kept graph is wholly
  // receiver-keyed -- donated before the kill (donation and termination
  // are mutually ordered by the safepoint protocol) or copied after it.
  vm->collectGarbage(vm->mainThread(), nullptr);
  for (GlobalRef* ref : received) {
    expectAllOwnedBy(ref->obj, iso_r->id);
    vm->removeGlobalRef(ref);
  }
  // No leaked charge: with every message dropped, both the dead sender's
  // and the receiver's charges drain to zero.
  vm->collectGarbage(vm->mainThread(), nullptr);
  EXPECT_EQ(iso_r->stats.bytes_charged.load(), 0u);
  EXPECT_EQ(iso_s->stats.bytes_charged.load(), 0u);
}

TEST_F(DonationFixture, ReceiverKilledBeforeDrainRefusesDonationAndLeaksNothing) {
  boot(/*zero_copy=*/true);
  // Queue messages (the sender's part of the send is done), then kill the
  // receiver before the drain: the in-flight transfers must refuse
  // donation -- a Terminating isolate cannot accept ownership -- and
  // nothing may leak on either side.
  std::vector<GlobalRef*> queue;
  {
    LocalRootScope roots(send_t);
    for (int i = 0; i < 8; ++i) {
      Object* arr = roots.add(vm->allocArrayObject(
          send_t, vm->registry().arrayClass("[I"), 512));
      ASSERT_NE(arr, nullptr);
      queue.push_back(vm->addGlobalRef(arr, iso_s));
    }
  }
  ASSERT_TRUE(vm->terminateIsolate(vm->mainThread(), iso_r));

  const u64 donated_before = iso_r->stats.bytes_donated_in.load();
  for (GlobalRef* ref : queue) {
    TransferStats stats;
    Object* got = transferGraph(*vm, recv_t, iso_s, ref->obj, &stats);
    EXPECT_EQ(stats.objects_donated, 0u);  // receiver not Active
    if (got != nullptr) {
      EXPECT_NE(got, ref->obj);
    }
    vm->clearPending(recv_t);
    vm->removeGlobalRef(ref);
  }
  EXPECT_EQ(iso_r->stats.bytes_donated_in.load(), donated_before);
  EXPECT_EQ(iso_r->stats.donated_bytes_delta.load(), 0);
  EXPECT_EQ(iso_s->stats.donated_bytes_delta.load(), 0);

  // Everything dropped: the killed receiver drains to zero charge and
  // leaves Active for good; the sender keeps nothing it should not.
  vm->collectGarbage(vm->mainThread(), nullptr);
  EXPECT_EQ(iso_s->stats.bytes_charged.load(), 0u);
  EXPECT_EQ(iso_r->stats.bytes_charged.load(), 0u);
  EXPECT_NE(vm->reportFor(iso_r).state, IsolateState::Active);
}

}  // namespace
}  // namespace ijvm
